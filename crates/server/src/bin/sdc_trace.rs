//! `sdc_trace` — the trace-forensics toolchain.
//!
//! ```text
//! sdc_trace merge SPANLOG [SPANLOG ...]
//! sdc_trace tree  SPANLOG [SPANLOG ...]
//! sdc_trace flame SPANLOG [SPANLOG ...]
//! sdc_trace query FILE [--ev NAME] [--where K=V,K=V]
//! sdc_trace diff  A B [--inner-iters N]
//! ```
//!
//! The first three read per-shard span logs (`serve --span-log`, format
//! v1: a `spanlog.meta` header line, then one canonical JSON event per
//! line with `trace`/`span`/`parent` correlation fields):
//!
//! * `merge` joins the logs across shards by trace id and prints one
//!   JSON line per trace — `{"roots":N,"spans":M,"trace":…,"tree":[…]}`
//!   — where every tree node carries the `shard` of the file it came
//!   from. A healthy traced request has exactly one root (the engine's
//!   `solve.exec` span) with the solver spans nested beneath it.
//! * `tree` prints the same join human-readably (indentation =
//!   parent/child, one block per trace).
//! * `flame` emits folded stacks (`a;b;c SELF_US`, flamegraph.pl
//!   input): per-span self time is its duration minus its children's.
//!
//! The last two read *det traces*: JSONL where every line is one
//! deterministic event. Both accept raw `--trace-out` files **and**
//! response streams from `solve-client` — a frame whose `result.trace`
//! is an array of det lines is expanded in place, so
//! `solve-client offline req.jsonl > out; sdc_trace diff out golden`
//! works without extraction glue.
//!
//! * `query` filters by event name and field equality and prints
//!   matching lines verbatim.
//! * `diff` reports the **first divergence** between two det traces as
//!   one JSON line: the 1-based line number, both event names, the
//!   differing fields, and — when the diverging line carries iteration
//!   coordinates — `inner_solve`/`inner_iter` plus the aggregate
//!   iteration (`(inner_solve-1)*N + inner_iter`) when `--inner-iters`
//!   supplies the per-outer count. Faulted-vs-clean FT-GMRES pairs
//!   therefore name the exact injected iteration. Always exits 0; the
//!   report line (`identical` vs `line`) is the contract.

use sdc_campaigns::cli::Cli;
use sdc_campaigns::json::Json;
use std::collections::BTreeMap;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("sdc_trace: {msg}");
    std::process::exit(1);
}

// ---- span-log reading (merge / tree / flame) ----

/// One closed span from a span log, tagged with its source file.
struct Span {
    /// Index of the file this span came from (span ids are only unique
    /// per process, so the file index is part of the key).
    file: usize,
    /// Shard identity from the file's `spanlog.meta` header.
    shard: u64,
    id: u64,
    parent: u64,
    ev: String,
    duration_us: u64,
    trace: Option<String>,
}

/// Reads every span-closing record (`span` + `parent` + `duration_us`)
/// from the given span logs. Point events and the meta header are
/// skipped; the header's `shard` tags every span of its file.
fn read_span_logs(paths: &[String]) -> Vec<Span> {
    let mut spans = Vec::new();
    for (file, path) in paths.iter().enumerate() {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
        let mut shard = 0u64;
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Json::parse(line).unwrap_or_else(|e| {
                fail(format_args!("{path}:{}: bad JSON: {e}", ln + 1));
            });
            let ev = v.get("ev").and_then(|e| e.as_str().ok()).unwrap_or_default().to_string();
            if ev == "spanlog.meta" {
                shard = v.get("shard").and_then(|s| s.as_u64().ok()).unwrap_or(0);
                continue;
            }
            let (Some(id), Some(parent), Some(duration_us)) = (
                v.get("span").and_then(|x| x.as_u64().ok()),
                v.get("parent").and_then(|x| x.as_u64().ok()),
                v.get("duration_us").and_then(|x| x.as_u64().ok()),
            ) else {
                continue;
            };
            let trace = v.get("trace").and_then(|t| t.as_str().ok()).map(str::to_string);
            spans.push(Span { file, shard, id, parent, ev, duration_us, trace });
        }
    }
    spans
}

/// Children of each span, keyed by (file, parent id), in span-id order
/// (ids are allocated monotonically, so this is open order).
fn child_index(spans: &[Span]) -> BTreeMap<(usize, u64), Vec<usize>> {
    let mut children: BTreeMap<(usize, u64), Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 {
            children.entry((s.file, s.parent)).or_default().push(i);
        }
    }
    for v in children.values_mut() {
        v.sort_by_key(|&i| spans[i].id);
    }
    children
}

/// Root spans (parent 0) carrying a trace id, grouped by that id.
fn roots_by_trace(spans: &[Span]) -> BTreeMap<String, Vec<usize>> {
    let mut by_trace: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent == 0 {
            if let Some(t) = &s.trace {
                by_trace.entry(t.clone()).or_default().push(i);
            }
        }
    }
    by_trace
}

fn tree_json(
    i: usize,
    spans: &[Span],
    children: &BTreeMap<(usize, u64), Vec<usize>>,
    count: &mut usize,
) -> Json {
    *count += 1;
    let s = &spans[i];
    let kids: Vec<Json> = children
        .get(&(s.file, s.id))
        .map(|c| c.iter().map(|&k| tree_json(k, spans, children, count)).collect())
        .unwrap_or_default();
    let mut fields = vec![
        ("ev", Json::str(&s.ev)),
        ("shard", Json::Num(s.shard as f64)),
        ("duration_us", Json::Num(s.duration_us as f64)),
    ];
    if !kids.is_empty() {
        fields.push(("children", Json::Arr(kids)));
    }
    Json::obj(fields)
}

fn span_log_inputs(what: &str) -> Vec<Span> {
    let cli = Cli::new(format!("sdc_trace {what}"), "read per-shard span logs").positional();
    let p = cli.parse_env(2);
    if p.positional.is_empty() {
        fail("at least one span-log file is required");
    }
    read_span_logs(&p.positional)
}

fn merge() {
    let spans = span_log_inputs("merge");
    let children = child_index(&spans);
    let by_trace = roots_by_trace(&spans);
    for (trace, roots) in &by_trace {
        let mut count = 0usize;
        let tree: Vec<Json> =
            roots.iter().map(|&i| tree_json(i, &spans, &children, &mut count)).collect();
        let line = Json::obj(vec![
            ("trace", Json::str(trace)),
            ("roots", Json::Num(roots.len() as f64)),
            ("spans", Json::Num(count as f64)),
            ("tree", Json::Arr(tree)),
        ]);
        println!("{}", line.to_line());
    }
    let traced: usize = by_trace.values().map(Vec::len).sum();
    let untraced = spans.iter().filter(|s| s.parent == 0 && s.trace.is_none()).count();
    eprintln!(
        "sdc_trace merge: {} spans, {} traces, {} traced roots, {} untraced roots",
        spans.len(),
        by_trace.len(),
        traced,
        untraced,
    );
}

fn print_tree(
    i: usize,
    depth: usize,
    spans: &[Span],
    children: &BTreeMap<(usize, u64), Vec<usize>>,
) {
    let s = &spans[i];
    println!("{:indent$}{} shard={} {}us", "", s.ev, s.shard, s.duration_us, indent = depth * 2);
    if let Some(kids) = children.get(&(s.file, s.id)) {
        for &k in kids {
            print_tree(k, depth + 1, spans, children);
        }
    }
}

fn tree() {
    let spans = span_log_inputs("tree");
    let children = child_index(&spans);
    for (trace, roots) in &roots_by_trace(&spans) {
        println!("trace {trace}");
        for &i in roots {
            print_tree(i, 1, &spans, &children);
        }
    }
}

fn flame() {
    let spans = span_log_inputs("flame");
    // (file, id) -> index, for parent-chain walking.
    let by_id: BTreeMap<(usize, u64), usize> =
        spans.iter().enumerate().map(|(i, s)| ((s.file, s.id), i)).collect();
    let children = child_index(&spans);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        // Self time: the span's duration minus its children's (clamped:
        // rounding can make the sum exceed the parent by a few us).
        let child_us: u64 = children
            .get(&(s.file, s.id))
            .map(|c| c.iter().map(|&k| spans[k].duration_us).sum())
            .unwrap_or(0);
        let self_us = s.duration_us.saturating_sub(child_us);
        let mut stack = vec![spans[i].ev.as_str()];
        let mut cur = s;
        while cur.parent != 0 {
            match by_id.get(&(cur.file, cur.parent)) {
                Some(&p) => {
                    stack.push(spans[p].ev.as_str());
                    cur = &spans[p];
                }
                None => break, // parent span never closed (truncated log)
            }
        }
        stack.reverse();
        *folded.entry(stack.join(";")).or_default() += self_us;
    }
    for (stack, us) in &folded {
        println!("{stack} {us}");
    }
}

// ---- det-trace reading (query / diff) ----

/// Loads a det trace: every JSONL line with an `ev` field, with
/// `solve-client` response frames auto-expanded — a frame carrying a
/// `result.trace` array of det lines contributes those lines in place.
/// Anything else (ok/error frames, blank lines) is skipped.
fn load_det_lines(path: &str) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = Json::parse(line) else { continue };
        if let Some(Json::Arr(items)) = v.get("result").and_then(|r| r.get("trace")) {
            for item in items {
                if let Ok(s) = item.as_str() {
                    out.push(s.to_string());
                }
            }
            continue;
        }
        if v.get("ev").is_some() {
            out.push(line.to_string());
        }
    }
    out
}

/// Renders a field the way `solve-client json-get` does: strings raw,
/// everything else canonical — so `--where` predicates match what shell
/// pipelines see.
fn render(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.to_line(),
    }
}

fn query() {
    let cli = Cli::new("sdc_trace query", "filter a det trace by event name and field values")
        .opt("ev", "NAME", "keep only events with this name")
        .opt("where", "K=V,K=V", "keep only lines whose fields equal the given values")
        .positional();
    let p = cli.parse_env(2);
    let path = p.positional.first().unwrap_or_else(|| fail("a det-trace file is required"));
    let want_ev = p.value("ev");
    let preds: Vec<(String, String)> = p
        .value("where")
        .map(|w| {
            w.split(',')
                .filter(|c| !c.is_empty())
                .map(|clause| {
                    let (k, v) = clause
                        .split_once('=')
                        .unwrap_or_else(|| fail(format_args!("bad --where clause '{clause}'")));
                    (k.to_string(), v.to_string())
                })
                .collect()
        })
        .unwrap_or_default();
    let mut matched = 0usize;
    for line in load_det_lines(path) {
        let v = Json::parse(&line).expect("load_det_lines yields valid JSON");
        if let Some(want) = want_ev {
            if v.get("ev").and_then(|e| e.as_str().ok()) != Some(want) {
                continue;
            }
        }
        if !preds.iter().all(|(k, want)| v.get(k).map(render).as_deref() == Some(want)) {
            continue;
        }
        matched += 1;
        println!("{line}");
    }
    eprintln!("sdc_trace query: {matched} matching lines");
}

/// Iteration coordinates extracted from a det line: `inner_solve` plus
/// `inner_iter` (spelled `j` on `gmres.iter` events), and `outer` when
/// present.
fn iteration_fields(v: &Json) -> Vec<(&'static str, Json)> {
    let mut fields = Vec::new();
    for (key, out) in [("outer", "outer"), ("inner_solve", "inner_solve")] {
        if let Some(n) = v.get(key).and_then(|x| x.as_u64().ok()) {
            fields.push((out, Json::Num(n as f64)));
        }
    }
    let inner_iter = v.get("inner_iter").or_else(|| v.get("j")).and_then(|x| x.as_u64().ok());
    if let Some(n) = inner_iter {
        fields.push(("inner_iter", Json::Num(n as f64)));
    }
    fields
}

fn diff() {
    let cli = Cli::new("sdc_trace diff", "report the first divergence between two det traces")
        .opt("inner-iters", "N", "inner iterations per outer: adds the aggregate iteration")
        .positional();
    let p = cli.parse_env(2);
    if p.positional.len() != 2 {
        fail("exactly two det-trace files are required");
    }
    let inner_iters = p.get::<u64>("inner-iters").unwrap_or_else(|e| fail(e));
    let a = load_det_lines(&p.positional[0]);
    let b = load_det_lines(&p.positional[1]);
    let n = a.len().max(b.len());
    for i in 0..n {
        let (la, lb) = (a.get(i), b.get(i));
        if la == lb {
            continue;
        }
        let parse = |l: Option<&String>| l.map(|l| Json::parse(l).expect("valid det line"));
        let (va, vb) = (parse(la), parse(lb));
        let ev = |v: &Option<Json>| {
            v.as_ref()
                .and_then(|v| v.get("ev").and_then(|e| e.as_str().ok()).map(str::to_string))
                .unwrap_or_else(|| "<eof>".to_string())
        };
        let mut fields = vec![
            ("line", Json::Num((i + 1) as f64)),
            ("event_a", Json::str(ev(&va))),
            ("event_b", Json::str(ev(&vb))),
        ];
        // Same event on both sides: name exactly which fields differ.
        if let (Some(Json::Obj(ma)), Some(Json::Obj(mb))) = (&va, &vb) {
            let keys: std::collections::BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
            let differing: Vec<String> =
                keys.into_iter().filter(|k| ma.get(*k) != mb.get(*k)).cloned().collect();
            if !differing.is_empty() {
                fields.push(("fields", Json::str(differing.join(","))));
            }
        }
        // Iteration coordinates, preferring side A (the faulted trace's
        // first new line is the fault.inject record itself).
        let coords = va
            .as_ref()
            .map(iteration_fields)
            .filter(|c| !c.is_empty())
            .or_else(|| vb.as_ref().map(iteration_fields))
            .unwrap_or_default();
        let aggregate = match (inner_iters, &coords) {
            (Some(n), c) => {
                let get =
                    |key| c.iter().find(|(k, _)| *k == key).and_then(|(_, v)| v.as_u64().ok());
                get("inner_solve").zip(get("inner_iter")).map(|(s, j)| (s - 1) * n + j)
            }
            _ => None,
        };
        fields.extend(coords);
        if let Some(agg) = aggregate {
            fields.push(("aggregate", Json::Num(agg as f64)));
        }
        eprintln!("sdc_trace diff: first divergence at line {}", i + 1);
        eprintln!("  a: {}", la.map(String::as_str).unwrap_or("<eof>"));
        eprintln!("  b: {}", lb.map(String::as_str).unwrap_or("<eof>"));
        println!("{}", Json::obj(fields).to_line());
        return;
    }
    println!(
        "{}",
        Json::obj(vec![("identical", Json::Bool(true)), ("lines", Json::Num(a.len() as f64))])
            .to_line()
    );
}

fn main() {
    let sub = std::env::args().nth(1).unwrap_or_default();
    match sub.as_str() {
        "merge" => merge(),
        "tree" => tree(),
        "flame" => flame(),
        "query" => query(),
        "diff" => diff(),
        other => {
            eprintln!(
                "usage: sdc_trace <merge|tree|flame|query|diff> [flags]\n\
                 (got '{other}'; each subcommand supports --help)"
            );
            std::process::exit(2);
        }
    }
}

//! The bounded solve queue with same-matrix batching and backpressure.
//!
//! `solve` requests do not run on their connection threads. Each is
//! packaged as a [`SolveJob`] and submitted to this scheduler:
//!
//! * **Backpressure** — the queue is bounded; a submit against a full
//!   queue is rejected immediately (the protocol's `busy` error, the
//!   429 of this protocol) instead of letting latency grow without
//!   bound. The client owns the retry policy.
//! * **Batching** — the dispatcher pops the oldest job and then pulls
//!   every other queued job for the *same matrix* (up to `batch_max`)
//!   into one dispatch, running the group as a single parallel region
//!   on the `sdc_parallel` pool. Same-matrix requests therefore share
//!   one operator pass through the pool — one warm SELL engine, one
//!   scheduling round — instead of queueing N cold dispatches.
//! * **Determinism** — batching never changes results: each job is an
//!   independent deterministic solve, and every parallel kernel below
//!   it is bitwise thread-count-independent, so scheduling (batched,
//!   interleaved, or serial) cannot alter a single output byte.
//!
//! [`Scheduler::drain`] is the graceful-shutdown half: it stops new
//! submissions, lets the dispatcher finish everything queued, and joins
//! it.

use crate::metrics::Metrics;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// One queued solve: which matrix it reads (the batching key) and the
/// closure that runs it (owns its response channel).
pub struct SolveJob {
    /// Registry content key of the operator.
    pub matrix_key: String,
    /// Client-assigned trace id, when the request carried one. Purely
    /// observational: it rides into the `sched.batch` timing event so a
    /// span log can correlate batch composition with the requests that
    /// formed it. Never affects scheduling or results.
    pub trace_id: Option<String>,
    /// The work; must not panic (wrap fallible work in `catch_unwind`).
    pub run: Box<dyn FnOnce() + Send>,
}

/// Why a submit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — the backpressure signal.
    Busy,
    /// The server is draining after `shutdown`.
    Draining,
}

struct State {
    queue: VecDeque<SolveJob>,
    draining: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    capacity: usize,
    batch_max: usize,
    metrics: Arc<Metrics>,
}

/// The bounded batching scheduler; owns one dispatcher thread.
pub struct Scheduler {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts a scheduler with the given queue capacity and batch cap
    /// (both clamped to ≥ 1).
    pub fn new(capacity: usize, batch_max: usize, metrics: Arc<Metrics>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), draining: false }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            batch_max: batch_max.max(1),
            metrics,
        });
        let worker = shared.clone();
        let dispatcher = std::thread::Builder::new()
            .name("sdc-dispatch".into())
            .spawn(move || dispatch_loop(&worker))
            .expect("cannot spawn dispatcher thread");
        Self { shared, dispatcher: Mutex::new(Some(dispatcher)) }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Batch cap.
    pub fn batch_max(&self) -> usize {
        self.shared.batch_max
    }

    /// Enqueues a job, or rejects it when the queue is full or the
    /// scheduler is draining.
    pub fn submit(&self, job: SolveJob) -> Result<(), SubmitError> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.draining {
            return Err(SubmitError::Draining);
        }
        if st.queue.len() >= self.shared.capacity {
            self.shared.metrics.busy_rejects.inc();
            return Err(SubmitError::Busy);
        }
        st.queue.push_back(job);
        self.shared.metrics.set_queue_depth(st.queue.len());
        drop(st);
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Graceful shutdown: refuse new work, run everything queued, join
    /// the dispatcher. Idempotent.
    pub fn drain(&self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.draining = true;
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.dispatcher.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.drain();
    }
}

fn dispatch_loop(shared: &Shared) {
    loop {
        // Collect the next batch: the oldest job plus every queued job
        // on the same matrix, preserving arrival order.
        let batch: Vec<SolveJob> = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.draining {
                    return;
                }
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let first = st.queue.pop_front().expect("non-empty");
            let key = first.matrix_key.clone();
            let mut batch = vec![first];
            let mut i = 0;
            while i < st.queue.len() && batch.len() < shared.batch_max {
                if st.queue[i].matrix_key == key {
                    batch.push(st.queue.remove(i).expect("index in bounds"));
                } else {
                    i += 1;
                }
            }
            shared.metrics.set_queue_depth(st.queue.len());
            batch
        };

        shared.metrics.batches_dispatched.inc();
        if batch.len() > 1 {
            shared.metrics.batched_solves.add(batch.len() as u64);
        }
        // Batch composition depends on arrival timing, so this is a
        // Timing-channel event: useful for tuning, never byte-diffed.
        if sdc_obs::enabled() {
            static EV_BATCH: sdc_obs::Callsite =
                sdc_obs::Callsite { name: "sched.batch", channel: sdc_obs::Channel::Timing };
            let mut ev = sdc_obs::Event::new(&EV_BATCH)
                .str("matrix", batch[0].matrix_key.clone())
                .u64("jobs", batch.len() as u64);
            // Correlate the batch with the traced requests riding in
            // it: distinct ids, arrival order, comma-joined.
            let mut traces: Vec<&str> = Vec::new();
            for job in &batch {
                if let Some(t) = job.trace_id.as_deref() {
                    if !traces.contains(&t) {
                        traces.push(t);
                    }
                }
            }
            if !traces.is_empty() {
                ev = ev.str("traces", traces.join(","));
            }
            ev.emit();
        }
        run_batch(batch);
    }
}

/// A job closure parked in a claimable slot for the parallel region.
type JobSlot = Mutex<Option<Box<dyn FnOnce() + Send>>>;

/// Runs a batch as one parallel region. Jobs promise not to panic, but
/// a defensive `catch_unwind` keeps a violation from killing the
/// dispatcher (the job's response channel reports the failure).
fn run_batch(batch: Vec<SolveJob>) {
    let run_guarded = |f: Box<dyn FnOnce() + Send>| {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    };
    if batch.len() == 1 {
        let job = batch.into_iter().next().expect("len 1");
        run_guarded(job.run);
        return;
    }
    let slots: Vec<JobSlot> = batch.into_iter().map(|j| Mutex::new(Some(j.run))).collect();
    sdc_parallel::run_pieces(slots.len(), &|i| {
        if let Some(f) = slots[i].lock().unwrap_or_else(|e| e.into_inner()).take() {
            run_guarded(f);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn job(key: &str, f: impl FnOnce() + Send + 'static) -> SolveJob {
        SolveJob { matrix_key: key.into(), trace_id: None, run: Box::new(f) }
    }

    #[test]
    fn batch_event_carries_distinct_trace_ids() {
        let sink = Arc::new(sdc_obs::trace::TraceSink::new());
        sdc_obs::install_global(sink.clone());
        let sched = Scheduler::new(8, 4, Arc::new(Metrics::new()));
        // Hold the dispatcher so the traced jobs queue into one batch.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        sched
            .submit(job("other", move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            }))
            .unwrap();
        started_rx.recv().unwrap();
        for t in ["req-a", "req-a", "req-b"] {
            sched
                .submit(SolveJob {
                    matrix_key: "k".into(),
                    trace_id: Some(t.into()),
                    run: Box::new(|| {}),
                })
                .unwrap();
        }
        release_tx.send(()).unwrap();
        sched.drain();
        sdc_obs::clear_global();
        let timing = sink.timing_bytes();
        assert!(timing.contains("\"traces\":\"req-a,req-b\""), "{timing}");
    }

    #[test]
    fn jobs_run_and_drain_completes_queued_work() {
        let metrics = Arc::new(Metrics::new());
        let sched = Scheduler::new(16, 4, metrics.clone());
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = ran.clone();
            sched
                .submit(job("k", move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }))
                .unwrap();
        }
        sched.drain();
        assert_eq!(ran.load(Ordering::SeqCst), 10, "drain must finish queued work");
        assert!(metrics.batches_dispatched.get() >= 1);
    }

    #[test]
    fn submit_after_drain_is_refused() {
        let sched = Scheduler::new(4, 2, Arc::new(Metrics::new()));
        sched.drain();
        assert_eq!(sched.submit(job("k", || {})).unwrap_err(), SubmitError::Draining);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let metrics = Arc::new(Metrics::new());
        let sched = Scheduler::new(2, 1, metrics.clone());
        // Block the dispatcher on the first job so the queue backs up.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        sched
            .submit(job("k", move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            }))
            .unwrap();
        started_rx.recv().unwrap(); // dispatcher is now busy, queue empty
        sched.submit(job("k", || {})).unwrap();
        sched.submit(job("k", || {})).unwrap();
        let err = sched.submit(job("k", || {})).unwrap_err();
        assert_eq!(err, SubmitError::Busy);
        assert_eq!(metrics.busy_rejects.get(), 1);
        assert_eq!(metrics.queue_peak.get(), 2);
        release_tx.send(()).unwrap();
        sched.drain();
    }

    #[test]
    fn same_matrix_jobs_batch_and_results_arrive_per_job() {
        let metrics = Arc::new(Metrics::new());
        let sched = Scheduler::new(32, 8, metrics.clone());
        // Hold the dispatcher so all jobs are queued before any runs.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        sched
            .submit(job("other", move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            }))
            .unwrap();
        started_rx.recv().unwrap();

        let (tx, rx) = mpsc::channel::<usize>();
        for i in 0..6 {
            let tx = tx.clone();
            let key = if i % 2 == 0 { "a" } else { "b" };
            sched
                .submit(job(key, move || {
                    tx.send(i).unwrap();
                }))
                .unwrap();
        }
        release_tx.send(()).unwrap();
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        sched.drain();
        // The interleaved a/b queue must have produced at least one
        // multi-job batch (3 "a" jobs were queued together).
        assert!(metrics.batched_solves.get() >= 2, "same-matrix jobs queued together must batch");
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_dispatcher() {
        let sched = Scheduler::new(8, 4, Arc::new(Metrics::new()));
        sched.submit(job("k", || panic!("job exploded"))).unwrap();
        let (tx, rx) = mpsc::channel::<()>();
        sched
            .submit(job("k", move || {
                tx.send(()).unwrap();
            }))
            .unwrap();
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("dispatcher must survive a panicking job");
        sched.drain();
    }
}

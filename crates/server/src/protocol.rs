//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every frame is one complete JSON object on one line (JSONL). A
//! request carries a `"cmd"` field naming the operation and an optional
//! `"id"` (any JSON scalar) that the server echoes on every response and
//! event line it produces for that request, so clients can multiplex.
//!
//! Responses are canonical JSON ([`sdc_campaigns::json`]: sorted keys,
//! round-trip-exact floats), which is what makes the served-vs-offline
//! byte-diff in CI and the determinism tests possible. Requests are
//! parsed *strictly*: an unknown field is a structured error, not a
//! silent ignore — so a typo cannot quietly change a solve, and a client
//! cannot smuggle in server-level settings (`threads` is the canonical
//! example: the worker pool is sized once at startup).
//!
//! See `crates/server/README.md` for the full protocol reference with a
//! copy-pasteable session.

use sdc_campaigns::json::{Json, JsonError};
use sdc_campaigns::spec::{class_parse, class_str, position_parse, position_str};
use sdc_campaigns::{CampaignSpec, DetectorPolicy, LsqSpec, ProblemSpec};
use sdc_faults::campaign::{FaultClass, FaultTarget, MgsPosition};
use sdc_gmres::precond::PrecondKind;
use sdc_sparse::SparseFormat;
use std::path::PathBuf;

/// Wire protocol version, reported by `stats`.
pub const PROTOCOL_VERSION: u64 = 1;

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError { offset: 0, msg: msg.into() })
}

/// Rejects unknown fields so client typos fail loudly. `threads` gets a
/// dedicated message: the pool is sized once at server startup and is
/// not a per-request knob.
fn check_keys(v: &Json, allowed: &[&str]) -> Result<(), JsonError> {
    if let Json::Obj(m) = v {
        for k in m.keys() {
            if k == "threads" {
                return err("unknown field 'threads': the worker-pool size is fixed at server \
                     startup (serve --threads / SDC_THREADS) and reported by stats");
            }
            if !allowed.contains(&k.as_str()) {
                return err(format!("unknown field '{k}'"));
            }
        }
    }
    Ok(())
}

/// Parses a solve frame's `trace` field: a bool (the legacy capture
/// flag) or an object `{"id": <string>, "capture": <bool>}`. Strict
/// like every other sub-object — an unknown subfield is a structured
/// error, not a silently dropped correlation id.
fn parse_trace_field(v: &Json, d: &SolveRequest) -> Result<(bool, Option<String>), JsonError> {
    match v.get("trace") {
        None => Ok((d.trace, None)),
        Some(Json::Bool(b)) => Ok((*b, None)),
        Some(t @ Json::Obj(m)) => {
            for k in m.keys() {
                if k != "id" && k != "capture" {
                    return err(format!("unknown trace subfield '{k}' (id, capture)"));
                }
            }
            let id = match t.get("id") {
                Some(s) => Some(s.as_str()?.to_string()),
                None => None,
            };
            let capture = match t.get("capture") {
                Some(b) => b.as_bool()?,
                None => false,
            };
            Ok((capture, id))
        }
        Some(_) => err("trace must be a bool or an object {\"id\":…,\"capture\":…}"),
    }
}

/// Best-effort extraction of a solve frame's trace id without erroring:
/// the event loop uses this to stamp `conn.state` records for a request
/// it has not validated yet. Gated on a cheap substring check so the
/// overwhelmingly common untraced frame costs one `contains`.
pub fn peek_trace_id(line: &str) -> Option<String> {
    if !line.contains("\"trace\"") {
        return None;
    }
    let v = Json::parse(line).ok()?;
    Some(v.get("trace")?.get("id")?.as_str().ok()?.to_string())
}

/// Which solver a [`SolveRequest`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Plain (optionally restarted) GMRES.
    Gmres,
    /// Flexible GMRES with the identity preconditioner.
    Fgmres,
    /// FT-GMRES: reliable outer FGMRES around unreliable inner GMRES —
    /// the only solver that accepts a fault-injection spec.
    FtGmres,
}

impl SolverKind {
    /// The wire string.
    pub fn as_str(&self) -> &'static str {
        match self {
            SolverKind::Gmres => "gmres",
            SolverKind::Fgmres => "fgmres",
            SolverKind::FtGmres => "ftgmres",
        }
    }

    /// Parses the wire string.
    pub fn parse(s: &str) -> Result<Self, JsonError> {
        match s {
            "gmres" => Ok(SolverKind::Gmres),
            "fgmres" => Ok(SolverKind::Fgmres),
            "ftgmres" => Ok(SolverKind::FtGmres),
            other => err(format!("unknown solver '{other}' (gmres, fgmres or ftgmres)")),
        }
    }
}

/// A single-SDC fault coordinate for a served FT-GMRES solve — the same
/// (class, position, aggregate iteration) vocabulary as the campaign
/// engine's sweep grids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fault magnitude class.
    pub class: FaultClass,
    /// MGS loop position (for `target=precond` it selects the first/last
    /// element of the preconditioner apply instead).
    pub position: MgsPosition,
    /// 1-based aggregate inner iteration to fault.
    pub aggregate: usize,
    /// Which kernel the fault strikes: the orthogonalization loop
    /// (`mgs`, the paper's surface, default) or the opaque
    /// preconditioner application (`precond`, the sequel's surface).
    /// Elided from the wire when it is the default.
    pub target: FaultTarget,
}

impl FaultSpec {
    /// Serializes to the wire form.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("class", Json::str(class_str(self.class))),
            ("position", Json::str(position_str(self.position))),
            ("aggregate", Json::Num(self.aggregate as f64)),
        ];
        if self.target != FaultTarget::Mgs {
            fields.push(("target", Json::str(self.target.as_str())));
        }
        Json::obj(fields)
    }

    /// Parses the wire form.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        check_keys(v, &["class", "position", "aggregate", "target"])?;
        let spec = FaultSpec {
            class: class_parse(v.field("class")?.as_str()?)?,
            position: position_parse(v.field("position")?.as_str()?)?,
            aggregate: v.field("aggregate")?.as_usize()?,
            target: match v.get("target") {
                Some(t) => {
                    FaultTarget::parse(t.as_str()?).map_err(|msg| JsonError { offset: 0, msg })?
                }
                None => FaultTarget::Mgs,
            },
        };
        if spec.aggregate == 0 {
            return err("fault.aggregate is 1-based and must be >= 1");
        }
        Ok(spec)
    }
}

/// Where a `load_matrix` request gets its matrix from.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixSource {
    /// A gallery/file problem, in the campaign engine's `ProblemSpec`
    /// vocabulary (`poisson`, `dcop`, `matrix_market` by server path).
    Problem(ProblemSpec),
    /// Inline COO triplets.
    Coo {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// `(row, col, value)` triplets; duplicates sum.
        entries: Vec<(usize, usize, f64)>,
    },
    /// Inline Matrix Market text.
    MatrixMarket(String),
}

/// `load_matrix`: parse/generate a matrix once, cache it under a
/// content-hashed key (and an optional friendly name) for later solves.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadMatrixRequest {
    /// Optional alias registered alongside the content key.
    pub name: Option<String>,
    /// The matrix source.
    pub source: MatrixSource,
    /// Marks a shard-to-shard replica push (see `replicate`): a sharded
    /// server accepts the load even when the name routes to another
    /// shard, because the owner is deliberately copying it here. Elided
    /// from the wire when false.
    pub replica: bool,
}

/// `replicate`: copy a matrix this server holds to every listed peer
/// shard, so they can serve solves on it directly. The values travel as
/// round-trip-exact COO triplets, and each peer's returned content key
/// is checked against the owner's — a replica that would diverge by one
/// bit is a hard error.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicateRequest {
    /// Registry key or alias of the matrix to copy.
    pub matrix: String,
    /// Peer addresses (`host:port`). The cluster client fills this with
    /// every other shard; empty means "nothing to push" and succeeds
    /// (the offline baseline), keeping cluster and offline responses
    /// byte-identical.
    pub peers: Vec<String>,
}

/// `solve`: one linear solve against a registered matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveRequest {
    /// Registry key or alias of the operator.
    pub matrix: String,
    /// Which solver to run.
    pub solver: SolverKind,
    /// Right-hand side; defaults to the registered problem's `b = A·1`.
    pub b: Option<Vec<f64>>,
    /// Relative residual tolerance.
    pub tol: f64,
    /// Iteration cap (outer iterations for nested solvers).
    pub maxit: usize,
    /// GMRES restart length (`gmres` only; `None` = no restarting).
    pub restart: Option<usize>,
    /// Inner iterations per outer iteration (`ftgmres` only).
    pub inner_iters: usize,
    /// Sparse storage engine (bitwise-invisible to results).
    pub format: SparseFormat,
    /// SpMV arithmetic contract (`strict` or `fast_math`). Unlike
    /// `format`, `fast_math` *does* change the solve's bytes (within a
    /// forward-error bound, deterministically), so it is part of the
    /// request, not a server-level knob. Elided from the wire when it is
    /// the default `strict`. The tier is CSR-only: `fast_math` implies
    /// the CSR engine.
    pub kernel_tier: sdc_sparse::KernelTier,
    /// Right preconditioner (`none`, `jacobi`, `ilu0`, `chebyshev`).
    /// Applied as right preconditioning in `gmres`, flexibly in
    /// `fgmres`, and inside the sandboxed inner solves in `ftgmres`.
    pub precond: PrecondKind,
    /// Detector policy (the campaign vocabulary; `none` = off).
    pub detector: DetectorPolicy,
    /// Projected least-squares policy.
    pub lsq: LsqSpec,
    /// Optional single-SDC injection (`ftgmres` only).
    pub fault: Option<FaultSpec>,
    /// Request seed, echoed in the response. The paper's single-fault
    /// solves are fully deterministic and do not consume it; it exists
    /// so stochastic workloads stay reproducible.
    pub seed: u64,
    /// Return the solution vector (round-trip-exact floats).
    pub return_x: bool,
    /// Capture the solve's deterministic trace (the `sdc_obs` Det
    /// channel) and return it as a `trace` array of canonical JSONL
    /// lines in the result.
    pub trace: bool,
    /// Client-assigned trace id for cross-shard correlation. On the
    /// wire the `trace` field is either a bool (legacy capture flag) or
    /// an object `{"id":…,"capture":…}`; the id is threaded through the
    /// engine as ambient context ([`sdc_obs::with_trace`]) and stamped
    /// onto span-log and flight-recorder records — never onto the det
    /// channel or the response, so traced and untraced solves stay
    /// byte-identical. Elided when absent.
    pub trace_id: Option<String>,
    /// Return the solve's exact wall-clock `duration_us` on the
    /// response. Off (and elided) by default because it makes the
    /// response bytes run-specific: byte-diff legs must not set it.
    pub timing: bool,
}

impl Default for SolveRequest {
    fn default() -> Self {
        Self {
            matrix: String::new(),
            solver: SolverKind::FtGmres,
            b: None,
            tol: 1e-8,
            maxit: 100,
            restart: None,
            inner_iters: 25,
            format: SparseFormat::Auto,
            kernel_tier: sdc_sparse::KernelTier::Strict,
            precond: PrecondKind::None,
            detector: DetectorPolicy::Off,
            lsq: LsqSpec::Standard,
            fault: None,
            seed: 0,
            return_x: false,
            trace: false,
            trace_id: None,
            timing: false,
        }
    }
}

/// `campaign`: run a full campaign spec as a streaming job.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignRequest {
    /// The campaign grid to run.
    pub spec: CampaignSpec,
    /// Server-side artifact path. When given, the artifact persists and
    /// a re-request resumes it; when omitted the job runs on a scratch
    /// file that is deleted afterwards.
    pub artifact: Option<PathBuf>,
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a matrix.
    LoadMatrix(LoadMatrixRequest),
    /// Run one solve.
    Solve(SolveRequest),
    /// Run a campaign job, streaming records.
    Campaign(CampaignRequest),
    /// Copy a held matrix to peer shards.
    Replicate(ReplicateRequest),
    /// Metrics snapshot.
    Stats,
    /// Prometheus text exposition of the unified metrics registry.
    Metrics,
    /// Matrix registry listing.
    List,
    /// Begin graceful drain and stop the server.
    Shutdown,
}

impl Request {
    /// The `cmd` string of this request.
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::LoadMatrix(_) => "load_matrix",
            Request::Solve(_) => "solve",
            Request::Campaign(_) => "campaign",
            Request::Replicate(_) => "replicate",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::List => "list",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serializes to the wire form (no `id`; the transport attaches it).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![("cmd", Json::str(self.cmd()))];
        match self {
            Request::LoadMatrix(r) => {
                if let Some(name) = &r.name {
                    fields.push(("name", Json::str(name)));
                }
                match &r.source {
                    MatrixSource::Problem(p) => fields.push(("problem", p.to_json())),
                    MatrixSource::Coo { rows, cols, entries } => {
                        let entries = entries
                            .iter()
                            .map(|&(i, j, v)| {
                                Json::Arr(vec![
                                    Json::Num(i as f64),
                                    Json::Num(j as f64),
                                    Json::Num(v),
                                ])
                            })
                            .collect();
                        fields.push((
                            "coo",
                            Json::obj(vec![
                                ("rows", Json::Num(*rows as f64)),
                                ("cols", Json::Num(*cols as f64)),
                                ("entries", Json::Arr(entries)),
                            ]),
                        ));
                    }
                    MatrixSource::MatrixMarket(text) => fields.push(("mtx", Json::str(text))),
                }
                if r.replica {
                    fields.push(("replica", Json::Bool(true)));
                }
            }
            Request::Solve(r) => {
                fields.push(("matrix", Json::str(&r.matrix)));
                fields.push(("solver", Json::str(r.solver.as_str())));
                if let Some(b) = &r.b {
                    fields.push(("b", Json::Arr(b.iter().map(|&x| Json::Num(x)).collect())));
                }
                fields.push(("tol", Json::Num(r.tol)));
                fields.push(("maxit", Json::Num(r.maxit as f64)));
                if let Some(m) = r.restart {
                    fields.push(("restart", Json::Num(m as f64)));
                }
                fields.push(("inner_iters", Json::Num(r.inner_iters as f64)));
                if r.format != SparseFormat::Auto {
                    fields.push(("format", Json::str(r.format.as_str())));
                }
                if r.kernel_tier != sdc_sparse::KernelTier::Strict {
                    fields.push(("kernel_tier", Json::str(r.kernel_tier.as_str())));
                }
                if r.precond != PrecondKind::None {
                    fields.push(("precond", Json::str(r.precond.as_str())));
                }
                if r.detector != DetectorPolicy::Off {
                    fields.push(("detector", Json::str(r.detector.as_str())));
                }
                if r.lsq != LsqSpec::Standard {
                    fields.push(("lsq", r.lsq.to_json()));
                }
                if let Some(f) = &r.fault {
                    fields.push(("fault", f.to_json()));
                }
                if r.seed != 0 {
                    fields.push(("seed", Json::u64(r.seed)));
                }
                if r.return_x {
                    fields.push(("return_x", Json::Bool(true)));
                }
                match (&r.trace_id, r.trace) {
                    (Some(id), capture) => {
                        let mut t = vec![("id", Json::str(id))];
                        if capture {
                            t.insert(0, ("capture", Json::Bool(true)));
                        }
                        fields.push(("trace", Json::obj(t)));
                    }
                    (None, true) => fields.push(("trace", Json::Bool(true))),
                    (None, false) => {}
                }
                if r.timing {
                    fields.push(("timing", Json::Bool(true)));
                }
            }
            Request::Campaign(r) => {
                fields.push(("spec", r.spec.to_json()));
                if let Some(p) = &r.artifact {
                    fields.push(("artifact", Json::str(p.to_string_lossy())));
                }
            }
            Request::Replicate(r) => {
                fields.push(("matrix", Json::str(&r.matrix)));
                if !r.peers.is_empty() {
                    fields.push(("peers", Json::Arr(r.peers.iter().map(Json::str).collect())));
                }
            }
            Request::Stats | Request::Metrics | Request::List | Request::Shutdown => {}
        }
        Json::obj(fields)
    }

    /// Parses a request frame (strict: unknown fields are errors). The
    /// `id` field is transport-level and accepted on every command.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let cmd = v.field("cmd")?.as_str()?;
        match cmd {
            "load_matrix" => {
                check_keys(v, &["cmd", "id", "name", "problem", "coo", "mtx", "replica"])?;
                let name = match v.get("name") {
                    Some(n) => Some(n.as_str()?.to_string()),
                    None => None,
                };
                let sources = [v.get("problem"), v.get("coo"), v.get("mtx")];
                if sources.iter().flatten().count() != 1 {
                    return err("load_matrix needs exactly one of: problem, coo, mtx");
                }
                let source = if let Some(p) = v.get("problem") {
                    MatrixSource::Problem(ProblemSpec::from_json(p)?)
                } else if let Some(c) = v.get("coo") {
                    check_keys(c, &["rows", "cols", "entries"])?;
                    let entries = c
                        .field("entries")?
                        .as_arr()?
                        .iter()
                        .map(|e| {
                            let t = e.as_arr()?;
                            if t.len() != 3 {
                                return err("coo entry must be [row, col, value]");
                            }
                            Ok((t[0].as_usize()?, t[1].as_usize()?, t[2].as_f64()?))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    MatrixSource::Coo {
                        rows: c.field("rows")?.as_usize()?,
                        cols: c.field("cols")?.as_usize()?,
                        entries,
                    }
                } else {
                    MatrixSource::MatrixMarket(v.field("mtx")?.as_str()?.to_string())
                };
                let replica = match v.get("replica") {
                    Some(b) => b.as_bool()?,
                    None => false,
                };
                Ok(Request::LoadMatrix(LoadMatrixRequest { name, source, replica }))
            }
            "replicate" => {
                check_keys(v, &["cmd", "id", "matrix", "peers"])?;
                let peers = match v.get("peers") {
                    Some(p) => p
                        .as_arr()?
                        .iter()
                        .map(|a| Ok(a.as_str()?.to_string()))
                        .collect::<Result<Vec<_>, JsonError>>()?,
                    None => Vec::new(),
                };
                Ok(Request::Replicate(ReplicateRequest {
                    matrix: v.field("matrix")?.as_str()?.to_string(),
                    peers,
                }))
            }
            "solve" => {
                check_keys(
                    v,
                    &[
                        "cmd",
                        "id",
                        "matrix",
                        "solver",
                        "b",
                        "tol",
                        "maxit",
                        "restart",
                        "inner_iters",
                        "format",
                        "kernel_tier",
                        "precond",
                        "detector",
                        "lsq",
                        "fault",
                        "seed",
                        "return_x",
                        "trace",
                        "timing",
                    ],
                )?;
                let d = SolveRequest::default();
                let (trace, trace_id) = parse_trace_field(v, &d)?;
                let req = SolveRequest {
                    matrix: v.field("matrix")?.as_str()?.to_string(),
                    solver: match v.get("solver") {
                        Some(s) => SolverKind::parse(s.as_str()?)?,
                        None => d.solver,
                    },
                    b: match v.get("b") {
                        Some(b) => Some(
                            b.as_arr()?
                                .iter()
                                .map(|x| x.as_f64())
                                .collect::<Result<Vec<_>, _>>()?,
                        ),
                        None => None,
                    },
                    tol: match v.get("tol") {
                        Some(t) => t.as_f64()?,
                        None => d.tol,
                    },
                    maxit: match v.get("maxit") {
                        Some(m) => m.as_usize()?,
                        None => d.maxit,
                    },
                    restart: match v.get("restart") {
                        Some(m) => Some(m.as_usize()?),
                        None => None,
                    },
                    inner_iters: match v.get("inner_iters") {
                        Some(m) => m.as_usize()?,
                        None => d.inner_iters,
                    },
                    format: match v.get("format") {
                        Some(f) => SparseFormat::parse(f.as_str()?)
                            .map_err(|msg| JsonError { offset: 0, msg })?,
                        None => d.format,
                    },
                    kernel_tier: match v.get("kernel_tier") {
                        Some(t) => sdc_sparse::KernelTier::parse(t.as_str()?)
                            .map_err(|msg| JsonError { offset: 0, msg })?,
                        None => d.kernel_tier,
                    },
                    precond: match v.get("precond") {
                        Some(p) => PrecondKind::parse(p.as_str()?)
                            .map_err(|msg| JsonError { offset: 0, msg })?,
                        None => d.precond,
                    },
                    detector: match v.get("detector") {
                        Some(s) => DetectorPolicy::parse(s.as_str()?)?,
                        None => d.detector,
                    },
                    lsq: match v.get("lsq") {
                        Some(l) => LsqSpec::from_json(l)?,
                        None => d.lsq,
                    },
                    fault: match v.get("fault") {
                        Some(f) => Some(FaultSpec::from_json(f)?),
                        None => None,
                    },
                    seed: match v.get("seed") {
                        Some(s) => s.as_u64()?,
                        None => d.seed,
                    },
                    return_x: match v.get("return_x") {
                        Some(b) => b.as_bool()?,
                        None => d.return_x,
                    },
                    trace,
                    trace_id,
                    timing: match v.get("timing") {
                        Some(b) => b.as_bool()?,
                        None => d.timing,
                    },
                };
                req.validate().map_err(|msg| JsonError { offset: 0, msg })?;
                Ok(Request::Solve(req))
            }
            "campaign" => {
                check_keys(v, &["cmd", "id", "spec", "artifact"])?;
                Ok(Request::Campaign(CampaignRequest {
                    spec: CampaignSpec::from_json(v.field("spec")?)?,
                    artifact: match v.get("artifact") {
                        Some(p) => Some(PathBuf::from(p.as_str()?)),
                        None => None,
                    },
                }))
            }
            "stats" => {
                check_keys(v, &["cmd", "id"])?;
                Ok(Request::Stats)
            }
            "metrics" => {
                check_keys(v, &["cmd", "id"])?;
                Ok(Request::Metrics)
            }
            "list" => {
                check_keys(v, &["cmd", "id"])?;
                Ok(Request::List)
            }
            "shutdown" => {
                check_keys(v, &["cmd", "id"])?;
                Ok(Request::Shutdown)
            }
            other => err(format!("unknown cmd '{other}'")),
        }
    }
}

impl SolveRequest {
    /// Structural validation beyond JSON well-formedness.
    pub fn validate(&self) -> Result<(), String> {
        if self.matrix.is_empty() {
            return Err("matrix must name a registered matrix (key or alias)".into());
        }
        // Negated so a NaN tolerance lands in the error branch too.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.tol >= 0.0) {
            return Err("tol must be a non-negative number".into());
        }
        if self.maxit == 0 {
            return Err("maxit must be >= 1".into());
        }
        if self.inner_iters == 0 {
            return Err("inner_iters must be >= 1".into());
        }
        if self.restart == Some(0) {
            return Err("restart must be >= 1 when given".into());
        }
        if self.restart.is_some() && self.solver != SolverKind::Gmres {
            return Err("restart only applies to solver=gmres".into());
        }
        if self.fault.is_some() && self.solver != SolverKind::FtGmres {
            return Err(
                "fault injection requires solver=ftgmres (the sandboxed inner solve)".into()
            );
        }
        if let Some(f) = &self.fault {
            if f.target == FaultTarget::Precond && self.precond == PrecondKind::None {
                return Err("fault.target=precond requires a preconditioner \
                     (precond=jacobi, ilu0 or chebyshev)"
                    .into());
            }
        }
        // The fast-math tier is CSR-only; with an explicit SELL engine it
        // would be silently ignored, which the protocol forbids. (`auto`
        // stays legal: it resolves per matrix and applies when it picks
        // CSR.)
        if self.kernel_tier == sdc_sparse::KernelTier::FastMath && self.format == SparseFormat::Sell
        {
            return Err("kernel_tier=fast_math is CSR-only; use format=csr or format=auto".into());
        }
        if self.detector != DetectorPolicy::Off && self.solver == SolverKind::Fgmres {
            return Err("fgmres has no detector hook (its outer loop is the reliable layer); \
                 use solver=gmres or solver=ftgmres"
                .into());
        }
        if let Some(b) = &self.b {
            if b.iter().any(|x| !x.is_finite()) {
                return Err("b must be finite".into());
            }
        }
        Ok(())
    }
}

/// Structured error codes (the HTTP-status analogues of the protocol).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed frame or invalid request (400).
    BadRequest,
    /// Unknown matrix key/alias (404).
    NotFound,
    /// Solve queue full — backpressure, retry later (429).
    Busy,
    /// The reference routes to a different shard of the cluster; the
    /// message names the owner's index so clients can self-correct
    /// (the protocol's 307).
    WrongShard,
    /// Server is draining after `shutdown` (503).
    ShuttingDown,
    /// Unexpected server-side failure (500).
    Internal,
}

impl ErrorCode {
    /// The wire string.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Busy => "busy",
            ErrorCode::WrongShard => "wrong_shard",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A success frame: `{"id":…,"ok":true,"result":…}` (the `id` appears
/// only when the request carried one).
pub fn ok_response(id: Option<&Json>, result: Json) -> Json {
    let mut fields = vec![("ok", Json::Bool(true)), ("result", result)];
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    Json::obj(fields)
}

/// An error frame: `{"id":…,"ok":false,"error":{"code":…,"message":…}}`.
pub fn error_response(id: Option<&Json>, code: ErrorCode, message: impl Into<String>) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("code", Json::str(code.as_str())),
                ("message", Json::str(message.into())),
            ]),
        ),
    ];
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    Json::obj(fields)
}

/// A streamed event frame (not final): `{"id":…,"event":…,…payload}`.
/// Clients keep reading until a frame with an `"ok"` field arrives.
pub fn event_response(id: Option<&Json>, event: &str, payload: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![("event", Json::str(event))];
    fields.extend(payload);
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    Json::obj(fields)
}

/// True for frames that terminate a request (response or error, as
/// opposed to a streamed event).
pub fn is_final_frame(v: &Json) -> bool {
    v.get("ok").is_some()
}

/// Gives a request frame an `id` if it lacks one, incrementing `next`.
/// `solve-client send` and `solve-client offline` share this, so their
/// outputs diff byte-for-byte.
pub fn assign_id(v: Json, next: &mut u64) -> Json {
    match v {
        Json::Obj(mut m) if !m.contains_key("id") => {
            m.insert("id".to_string(), Json::Num(*next as f64));
            *next += 1;
            Json::Obj(m)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_round_trips_with_defaults_elided() {
        let req = Request::Solve(SolveRequest { matrix: "p".into(), ..SolveRequest::default() });
        let line = req.to_json().to_line();
        assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), req);
        // Defaults are elided from the wire form.
        assert!(!line.contains("format"), "{line}");
        assert!(!line.contains("kernel_tier"), "{line}");
        assert!(!line.contains("precond"), "{line}");
        assert!(!line.contains("detector"), "{line}");
        assert!(!line.contains("return_x"), "{line}");
        assert!(!line.contains("trace"), "{line}");
        assert!(!line.contains("timing"), "{line}");
    }

    #[test]
    fn trace_field_accepts_bool_and_object_forms() {
        // Object form with id only: capture stays off.
        let v = Json::parse("{\"cmd\":\"solve\",\"matrix\":\"p\",\"trace\":{\"id\":\"req-1\"}}")
            .unwrap();
        let Request::Solve(r) = Request::from_json(&v).unwrap() else { panic!() };
        assert!(!r.trace);
        assert_eq!(r.trace_id.as_deref(), Some("req-1"));
        // id + capture round-trips through the canonical wire form.
        let req = Request::Solve(SolveRequest {
            matrix: "p".into(),
            trace: true,
            trace_id: Some("req-2".into()),
            ..SolveRequest::default()
        });
        let line = req.to_json().to_line();
        assert!(line.contains("\"trace\":{\"capture\":true,\"id\":\"req-2\"}"), "{line}");
        assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), req);
        // id without capture serializes without the capture subfield.
        let req = Request::Solve(SolveRequest {
            matrix: "p".into(),
            trace_id: Some("req-3".into()),
            ..SolveRequest::default()
        });
        let line = req.to_json().to_line();
        assert!(line.contains("\"trace\":{\"id\":\"req-3\"}"), "{line}");
        assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), req);
        // Unknown subfields are structured errors, like everywhere else.
        let e = Request::from_json(
            &Json::parse(
                "{\"cmd\":\"solve\",\"matrix\":\"p\",\"trace\":{\"id\":\"x\",\"sample\":1}}",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown trace subfield 'sample'"), "{e}");
        // Non-bool, non-object forms are rejected.
        let e = Request::from_json(
            &Json::parse("{\"cmd\":\"solve\",\"matrix\":\"p\",\"trace\":7}").unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("trace must be a bool or an object"), "{e}");
    }

    #[test]
    fn peek_trace_id_is_cheap_and_total() {
        assert_eq!(peek_trace_id("{\"cmd\":\"solve\",\"matrix\":\"p\"}"), None);
        assert_eq!(peek_trace_id("{\"cmd\":\"solve\",\"trace\":true}"), None);
        assert_eq!(
            peek_trace_id("{\"cmd\":\"solve\",\"trace\":{\"id\":\"req-9\"}}").as_deref(),
            Some("req-9")
        );
        // Malformed frames never panic the peek.
        assert_eq!(peek_trace_id("{\"trace\":{\"id\":"), None);
    }

    #[test]
    fn precond_and_fault_target_parse_strictly() {
        // precond round-trips and unknown values are structured errors.
        let req = Request::Solve(SolveRequest {
            matrix: "p".into(),
            precond: PrecondKind::Ilu0,
            ..SolveRequest::default()
        });
        let line = req.to_json().to_line();
        assert!(line.contains("\"precond\":\"ilu0\""), "{line}");
        assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), req);
        let e = Request::from_json(
            &Json::parse("{\"cmd\":\"solve\",\"matrix\":\"p\",\"precond\":\"amg\"}").unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown preconditioner 'amg'"), "{e}");

        // fault.target defaults to mgs, round-trips, and rejects unknowns.
        let f = FaultSpec {
            class: FaultClass::Huge,
            position: MgsPosition::Last,
            aggregate: 3,
            target: FaultTarget::Mgs,
        };
        let line = f.to_json().to_line();
        assert!(!line.contains("target"), "{line}");
        assert_eq!(FaultSpec::from_json(&Json::parse(&line).unwrap()).unwrap(), f);
        let f = FaultSpec { target: FaultTarget::Precond, ..f };
        let line = f.to_json().to_line();
        assert!(line.contains("\"target\":\"precond\""), "{line}");
        assert_eq!(FaultSpec::from_json(&Json::parse(&line).unwrap()).unwrap(), f);
        let e = FaultSpec::from_json(
            &Json::parse(
                "{\"class\":\"huge\",\"position\":\"first\",\"aggregate\":1,\"target\":\"spmv\"}",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown fault target 'spmv'"), "{e}");
    }

    #[test]
    fn solve_round_trips_fully_specified() {
        let req = Request::Solve(SolveRequest {
            matrix: "m0123456789abcdef".into(),
            solver: SolverKind::FtGmres,
            b: Some(vec![1.0, -2.5, 1e-300]),
            tol: 1e-7,
            maxit: 150,
            restart: None,
            inner_iters: 25,
            format: SparseFormat::Csr,
            kernel_tier: sdc_sparse::KernelTier::FastMath,
            precond: PrecondKind::Chebyshev,
            detector: DetectorPolicy::RestartInner,
            lsq: LsqSpec::RankRevealing { tol: 1e-12 },
            fault: Some(FaultSpec {
                class: FaultClass::Huge,
                position: MgsPosition::First,
                aggregate: 26,
                target: FaultTarget::Precond,
            }),
            seed: u64::MAX,
            return_x: true,
            trace: true,
            trace_id: Some("req-00042".into()),
            timing: true,
        });
        let line = req.to_json().to_line();
        assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), req);
    }

    #[test]
    fn load_matrix_variants_round_trip() {
        for req in [
            Request::LoadMatrix(LoadMatrixRequest {
                name: Some("p24".into()),
                source: MatrixSource::Problem(ProblemSpec::Poisson { m: 24 }),
                replica: false,
            }),
            Request::LoadMatrix(LoadMatrixRequest {
                name: None,
                source: MatrixSource::Coo {
                    rows: 2,
                    cols: 2,
                    entries: vec![(0, 0, 4.0), (1, 1, 0.5), (0, 1, -1.0)],
                },
                replica: false,
            }),
            Request::LoadMatrix(LoadMatrixRequest {
                name: Some("file".into()),
                source: MatrixSource::MatrixMarket(
                    "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.0\n".into(),
                ),
                replica: false,
            }),
            Request::LoadMatrix(LoadMatrixRequest {
                name: Some("hot".into()),
                source: MatrixSource::Problem(ProblemSpec::Poisson { m: 8 }),
                replica: true,
            }),
        ] {
            let line = req.to_json().to_line();
            assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), req, "{line}");
        }
        // The replica marker is elided when false (offline/served diffs
        // depend on canonical elision).
        let line = Request::LoadMatrix(LoadMatrixRequest {
            name: None,
            source: MatrixSource::Problem(ProblemSpec::Poisson { m: 4 }),
            replica: false,
        })
        .to_json()
        .to_line();
        assert!(!line.contains("replica"), "{line}");
    }

    #[test]
    fn replicate_round_trips_and_parses_strictly() {
        for req in [
            Request::Replicate(ReplicateRequest { matrix: "p".into(), peers: vec![] }),
            Request::Replicate(ReplicateRequest {
                matrix: "m0123456789abcdef".into(),
                peers: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
            }),
        ] {
            let line = req.to_json().to_line();
            assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), req, "{line}");
        }
        // Empty peer lists are elided; unknown fields stay fatal.
        let line = Request::Replicate(ReplicateRequest { matrix: "p".into(), peers: vec![] })
            .to_json()
            .to_line();
        assert!(!line.contains("peers"), "{line}");
        let e = Request::from_json(
            &Json::parse("{\"cmd\":\"replicate\",\"matrix\":\"p\",\"shards\":2}").unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown field 'shards'"), "{e}");
        assert!(Request::from_json(&Json::parse("{\"cmd\":\"replicate\"}").unwrap()).is_err());
    }

    #[test]
    fn campaign_and_plain_commands_round_trip() {
        let spec = CampaignSpec::paper_shape("wire", vec![ProblemSpec::Poisson { m: 8 }]);
        for req in [
            Request::Campaign(CampaignRequest { spec, artifact: Some(PathBuf::from("a.jsonl")) }),
            Request::Stats,
            Request::Metrics,
            Request::List,
            Request::Shutdown,
        ] {
            let line = req.to_json().to_line();
            assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), req);
        }
    }

    #[test]
    fn unknown_fields_are_rejected_and_threads_gets_a_pointed_message() {
        let e = Request::from_json(
            &Json::parse("{\"cmd\":\"solve\",\"matrix\":\"p\",\"bogus\":1}").unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown field 'bogus'"), "{e}");

        let e = Request::from_json(
            &Json::parse("{\"cmd\":\"solve\",\"matrix\":\"p\",\"threads\":8}").unwrap(),
        )
        .unwrap_err();
        assert!(e.msg.contains("fixed at server startup"), "{e}");
        // stats/list/shutdown are strict too.
        let e = Request::from_json(&Json::parse("{\"cmd\":\"stats\",\"threads\":2}").unwrap())
            .unwrap_err();
        assert!(e.msg.contains("threads"), "{e}");
    }

    #[test]
    fn validation_rejects_degenerate_solves() {
        let ok = |f: &dyn Fn(&mut SolveRequest)| {
            let mut r = SolveRequest { matrix: "p".into(), ..SolveRequest::default() };
            f(&mut r);
            r.validate()
        };
        assert!(ok(&|_| {}).is_ok());
        assert!(ok(&|r| r.matrix.clear()).is_err());
        assert!(ok(&|r| r.tol = f64::NAN).is_err());
        assert!(ok(&|r| r.maxit = 0).is_err());
        assert!(ok(&|r| r.inner_iters = 0).is_err());
        assert!(ok(&|r| {
            r.solver = SolverKind::Gmres;
            r.fault = Some(FaultSpec {
                class: FaultClass::Huge,
                position: MgsPosition::First,
                aggregate: 1,
                target: FaultTarget::Mgs,
            });
        })
        .is_err());
        // A precond-target fault needs a preconditioner to strike.
        assert!(ok(&|r| {
            r.fault = Some(FaultSpec {
                class: FaultClass::Huge,
                position: MgsPosition::First,
                aggregate: 1,
                target: FaultTarget::Precond,
            });
        })
        .is_err());
        assert!(ok(&|r| {
            r.precond = PrecondKind::Ilu0;
            r.fault = Some(FaultSpec {
                class: FaultClass::Huge,
                position: MgsPosition::First,
                aggregate: 1,
                target: FaultTarget::Precond,
            });
        })
        .is_ok());
        assert!(ok(&|r| r.b = Some(vec![1.0, f64::NAN])).is_err());
        // fast_math is CSR-only; an explicit SELL engine would silently
        // ignore the tier.
        assert!(ok(&|r| {
            r.kernel_tier = sdc_sparse::KernelTier::FastMath;
            r.format = SparseFormat::Sell;
        })
        .is_err());
        assert!(ok(&|r| r.kernel_tier = sdc_sparse::KernelTier::FastMath).is_ok());
        assert!(ok(&|r| r.restart = Some(10)).is_err(), "restart needs solver=gmres");
        assert!(ok(&|r| {
            r.solver = SolverKind::Gmres;
            r.restart = Some(10);
        })
        .is_ok());
        // fgmres has no detector hook: a detector there would be
        // silently ignored, which the protocol forbids.
        assert!(ok(&|r| {
            r.solver = SolverKind::Fgmres;
            r.detector = DetectorPolicy::RestartInner;
        })
        .is_err());
        assert!(ok(&|r| {
            r.solver = SolverKind::Gmres;
            r.detector = DetectorPolicy::RestartInner;
        })
        .is_ok());
    }

    #[test]
    fn response_helpers_shape_and_finality() {
        let id = Json::Num(7.0);
        let ok = ok_response(Some(&id), Json::obj(vec![("x", Json::Num(1.0))]));
        assert_eq!(ok.to_line(), "{\"id\":7,\"ok\":true,\"result\":{\"x\":1}}");
        assert!(is_final_frame(&ok));
        let e = error_response(None, ErrorCode::Busy, "queue full");
        assert!(e.to_line().contains("\"code\":\"busy\""));
        assert!(is_final_frame(&e));
        let ev = event_response(Some(&id), "record", vec![("record", Json::Null)]);
        assert!(!is_final_frame(&ev));
    }

    #[test]
    fn assign_id_fills_gaps_only() {
        let mut next = 1;
        let a = assign_id(Json::parse("{\"cmd\":\"stats\"}").unwrap(), &mut next);
        assert_eq!(a.field("id").unwrap().as_usize().unwrap(), 1);
        let b = assign_id(Json::parse("{\"cmd\":\"stats\",\"id\":\"mine\"}").unwrap(), &mut next);
        assert_eq!(b.field("id").unwrap().as_str().unwrap(), "mine");
        assert_eq!(next, 2);
    }
}

//! The TCP transport: a readiness-driven event loop.
//!
//! One loop thread multiplexes the listener and every connection over
//! [`crate::netpoll::Poller`] (epoll on Linux, poll(2) elsewhere).
//! There are no per-connection threads and no sleep-tick polling: the
//! loop blocks in `wait` until a socket is ready or the engine wakes it
//! with a response. Solves still run on the engine's bounded
//! [`crate::scheduler::Scheduler`] worker pool — the loop only moves
//! bytes, so thousands of idle connections cost two file descriptors
//! and a few hundred bytes of buffer each, not a stack.
//!
//! Per-connection protocol state is a pair of byte buffers:
//!
//! * **read side** — raw bytes accumulate in `read_buf`; complete
//!   newline-terminated frames are carved off into `pending` (UTF-8 is
//!   validated per frame, and partial frames persist across readiness
//!   events, so a frame split over any number of TCP segments is
//!   reassembled byte-for-byte). A frame that exceeds
//!   [`ServerOptions::max_frame`] without a newline gets a structured
//!   `bad_request` answer and the connection is closed — the buffer
//!   cannot be grown without bound by a hostile peer.
//! * **write side** — response lines append to `write_buf` and drain
//!   whenever the socket is writable; a slow reader backs up its own
//!   buffer, never the loop.
//!
//! **Ordering / determinism**: exactly one request per connection is in
//! flight in the engine at a time (`busy` flag). Pipelined frames queue
//! in arrival order and dispatch strictly after the previous request's
//! final frame, so the response byte stream for a connection is
//! identical to the old thread-per-connection transport — and to
//! offline mode — at any thread count.
//!
//! **Backpressure** is layered: frames queued per connection are capped
//! (`max_pipelined` — beyond it the loop simply stops reading from that
//! socket and TCP flow control pushes back), and the engine's solve
//! queue is bounded (`busy` rejections), so total memory is bounded by
//! `connections × (max_frame + max_pipelined × frame)`.
//!
//! Shutdown: a `shutdown` request flips the engine's drain flag. The
//! loop closes the listener, answers everything already queued, closes
//! each connection once it is idle and flushed, and exits —
//! in-flight requests always get their response first.

use crate::engine::{write_flight_dump, Emit, Engine, SolveHooks};
use crate::netpoll::{Interest, PollEvent, Poller, Token};
use crate::protocol::{error_response, peek_trace_id, ErrorCode};
use sdc_campaigns::json::Json;
use sdc_obs::flight::FlightRecorder;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::{Arc, Mutex};

/// Transport tuning knobs (the engine has its own, see
/// [`crate::engine::EngineConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Largest accepted frame, bytes (without the newline). A frame
    /// that grows past this without terminating is answered with
    /// `bad_request` and the connection is closed.
    pub max_frame: usize,
    /// Most complete frames queued per connection before the loop
    /// stops reading from that socket (TCP flow control takes over).
    pub max_pipelined: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { max_frame: 8 * 1024 * 1024, max_pipelined: 64 }
    }
}

/// A running server; dropping it does *not* stop the loop — call
/// [`ServerHandle::wait`] after shutdown, or keep it alive for the
/// process lifetime.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    event_loop: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `--port 0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine (for in-process tests and metrics scraping).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Blocks until a `shutdown` request has drained the server: joins
    /// the event loop, then the engine's workers.
    pub fn wait(mut self) {
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        self.engine.drain();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) and starts
/// the event loop for `engine` with default [`ServerOptions`].
pub fn serve(engine: Arc<Engine>, addr: &str) -> std::io::Result<ServerHandle> {
    serve_with(engine, addr, ServerOptions::default())
}

/// [`serve`] with explicit transport options.
pub fn serve_with(
    engine: Arc<Engine>,
    addr: &str,
    opts: ServerOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let mut event_loop = EventLoop::new(engine.clone(), listener, poller, opts)?;
    let handle = std::thread::Builder::new()
        .name("sdc-loop".into())
        .spawn(move || event_loop.run())
        .expect("cannot spawn event-loop thread");
    Ok(ServerHandle { addr: local, engine, event_loop: Some(handle) })
}

/// A response frame travelling from an engine worker back to the loop.
struct OutMsg {
    token: usize,
    line: String,
    /// Final frame of its request: clears the connection's `busy` flag.
    last: bool,
}

/// State shared between the loop and the emit closures handed to the
/// engine. Emits may fire from worker threads at any time — they park
/// the frame here and wake the loop.
struct LoopShared {
    outbox: Mutex<Vec<OutMsg>>,
    waker: crate::netpoll::Waker,
    /// Tokens whose write side died while a request was in flight.
    /// Engine workers probe membership (the `delivery_dead` hook) when
    /// their solve finishes; the final emit removes the token again, so
    /// the set stays bounded by requests actually in flight.
    dead: Mutex<HashSet<usize>>,
}

const LISTENER: Token = Token(0);
/// First token handed to an accepted connection.
const FIRST_CONN: usize = 1;

struct Conn {
    stream: TcpStream,
    /// Raw inbound bytes; a partial frame lives here between events.
    read_buf: Vec<u8>,
    /// Prefix of `read_buf` already scanned for a newline.
    scanned: usize,
    /// Outbound bytes not yet accepted by the kernel.
    write_buf: Vec<u8>,
    /// Complete frames awaiting dispatch, in arrival order.
    pending: VecDeque<String>,
    /// A request from this connection is in flight in the engine.
    busy: bool,
    /// Peer sent EOF (half-close: it may still be reading responses).
    peer_closed: bool,
    /// The write side failed — responses can never be delivered.
    write_dead: bool,
    /// Close as soon as idle and flushed (protocol violation).
    closing: bool,
    /// Trace id of the most recently dispatched request, stamped on
    /// this connection's `conn.state` close event for correlation.
    current_trace: Option<String>,
    /// Currently registered readiness interest.
    interest: Interest,
    /// Whether the fd is registered with the poller at all. A socket
    /// wanting no interest is deregistered outright: epoll reports
    /// `EPOLLHUP` regardless of the requested mask, so a closed peer
    /// with a solve still in flight would otherwise spin the loop.
    registered: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: Vec::new(),
            pending: VecDeque::new(),
            busy: false,
            peer_closed: false,
            write_dead: false,
            closing: false,
            current_trace: None,
            interest: Interest::READ,
            registered: true,
        }
    }

    fn has_unflushed(&self) -> bool {
        !self.write_buf.is_empty()
    }
}

struct EventLoop {
    engine: Arc<Engine>,
    listener: Option<TcpListener>,
    poller: Poller,
    opts: ServerOptions,
    shared: Arc<LoopShared>,
    conns: BTreeMap<usize, Conn>,
    next_token: usize,
    draining: bool,
    /// Loop-thread flight recorder (present only with `--flight-dir`):
    /// captures `loop.wake` / `conn.state` events so a transport-level
    /// failure (oversized frame) can dump the loop's recent history.
    flight: Option<Arc<FlightRecorder>>,
}

impl EventLoop {
    fn new(
        engine: Arc<Engine>,
        listener: TcpListener,
        poller: Poller,
        opts: ServerOptions,
    ) -> std::io::Result<Self> {
        poller.register(listener.as_raw_fd(), LISTENER, Interest::READ)?;
        let shared = Arc::new(LoopShared {
            outbox: Mutex::new(Vec::new()),
            waker: poller.waker(),
            dead: Mutex::new(HashSet::new()),
        });
        Ok(EventLoop {
            engine,
            listener: Some(listener),
            poller,
            opts,
            shared,
            conns: BTreeMap::new(),
            next_token: FIRST_CONN,
            draining: false,
            flight: None,
        })
    }

    fn run(&mut self) {
        // With post-mortems enabled, the loop thread records its own
        // recent events; without, nothing changes (`enabled()` stays
        // false on this thread and event construction is skipped).
        if self.engine.flight_dir().is_some() {
            let rec = Arc::new(FlightRecorder::new(sdc_obs::flight::DEFAULT_CAPACITY));
            self.flight = Some(rec.clone());
            sdc_obs::with_local(rec, || self.run_inner());
        } else {
            self.run_inner();
        }
    }

    fn run_inner(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            // Apply responses and dispatch queued frames until nothing
            // moves: quick commands answer synchronously inside
            // `dispatch`, which re-fills the outbox, which may unblock
            // the next pipelined frame — hence the alternation.
            loop {
                let moved_out = self.apply_outbox();
                let moved_in = self.dispatch_ready();
                if !moved_out && !moved_in {
                    break;
                }
            }

            // A handled `shutdown` request flips the engine flag; stop
            // accepting the moment we notice.
            if self.engine.shutdown_requested() && self.listener.is_some() {
                if let Some(l) = self.listener.take() {
                    let _ = self.poller.deregister(l.as_raw_fd());
                }
                self.draining = true;
            }

            self.flush_and_close();

            if self.draining && self.conns.is_empty() {
                return;
            }

            self.update_interests();

            match self.poller.wait(&mut events, None) {
                Ok(_woken) => {}
                Err(_) => continue,
            }
            self.engine.metrics.loop_wakeups.inc();
            if sdc_obs::enabled() {
                static EV_WAKE: sdc_obs::Callsite =
                    sdc_obs::Callsite { name: "loop.wake", channel: sdc_obs::Channel::Timing };
                sdc_obs::Event::new(&EV_WAKE).u64("events", events.len() as u64).emit();
            }

            for ev in events.drain(..) {
                if ev.token == LISTENER {
                    self.accept_all();
                } else {
                    self.handle_conn_event(ev);
                }
            }
        }
    }

    /// Moves engine responses into their connections' write buffers.
    fn apply_outbox(&mut self) -> bool {
        let msgs: Vec<OutMsg> =
            std::mem::take(&mut *self.shared.outbox.lock().unwrap_or_else(|e| e.into_inner()));
        let moved = !msgs.is_empty();
        for msg in msgs {
            // The connection may have died while its solve ran; the
            // response is dropped, exactly as a broken write would be.
            if let Some(conn) = self.conns.get_mut(&msg.token) {
                conn.write_buf.extend_from_slice(msg.line.as_bytes());
                conn.write_buf.push(b'\n');
                if msg.last {
                    conn.busy = false;
                }
            }
        }
        moved
    }

    /// Starts the next queued request on every non-busy connection
    /// (one in flight per connection keeps response order, and
    /// therefore served bytes, deterministic).
    fn dispatch_ready(&mut self) -> bool {
        let ready: Vec<(usize, String)> = self
            .conns
            .iter_mut()
            .filter(|(_, c)| !c.busy && !c.pending.is_empty())
            .map(|(&t, c)| {
                c.busy = true;
                let line = c.pending.pop_front().expect("checked non-empty");
                // Remember the request's trace id (cheap: gated on the
                // substring) so the close event can be correlated.
                c.current_trace = peek_trace_id(&line);
                (t, line)
            })
            .collect();
        let moved = !ready.is_empty();
        for (token, line) in ready {
            let shared = Arc::clone(&self.shared);
            let emit: Emit = Arc::new(move |frame: Json, last: bool| {
                shared.outbox.lock().unwrap_or_else(|e| e.into_inner()).push(OutMsg {
                    token,
                    line: frame.to_line(),
                    last,
                });
                if last {
                    // The request is over either way; keep `dead` from
                    // accumulating tokens of reaped connections.
                    shared.dead.lock().unwrap_or_else(|e| e.into_inner()).remove(&token);
                }
                // Wake *after* the push: the loop always sees the frame
                // once the pipe byte is readable.
                shared.waker.wake();
            });
            let hooks = SolveHooks {
                delivery_dead: Some({
                    let shared = Arc::clone(&self.shared);
                    Arc::new(move || {
                        shared.dead.lock().unwrap_or_else(|e| e.into_inner()).contains(&token)
                    })
                }),
            };
            self.engine.handle_line_async_with(&line, emit, hooks);
        }
        moved
    }

    fn accept_all(&mut self) {
        let Some(listener) = &self.listener else { return };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), Token(token), Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.engine.metrics.connections_opened.inc();
                    self.engine.metrics.connections_active.inc();
                    emit_conn_state(token, "open", None);
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn handle_conn_event(&mut self, ev: PollEvent) {
        let Some(conn) = self.conns.get_mut(&ev.token.0) else { return };
        if ev.readable || ev.closed {
            read_available(conn);
            let oversized = extract_frames(conn, self.opts.max_frame, self.opts.max_pipelined);
            if oversized {
                self.engine.metrics.frames_oversized.inc();
                // Transport-level poisoning is a dump condition too: the
                // loop's own recorder holds the recent wake/connection
                // history leading up to the bad frame.
                if let (Some(dir), Some(rec)) = (self.engine.flight_dir(), &self.flight) {
                    let mut header = sdc_obs::Event::new(&sdc_obs::flight::HEADER)
                        .str("reason", "oversized_frame")
                        .u64("token", ev.token.0 as u64);
                    if let Some(t) = &conn.current_trace {
                        header = header.str("trace", t.clone());
                    }
                    if write_flight_dump(&dir, "oversized_frame", &rec.dump(header)).is_ok() {
                        self.engine.metrics.flight_dumps.inc();
                    }
                }
                let err = error_response(
                    None,
                    ErrorCode::BadRequest,
                    format!(
                        "frame exceeds max_frame ({} bytes) without a newline",
                        self.opts.max_frame
                    ),
                );
                conn.write_buf.extend_from_slice(err.to_line().as_bytes());
                conn.write_buf.push(b'\n');
                conn.closing = true;
                conn.read_buf.clear();
                conn.scanned = 0;
            }
        }
        // `ev.writable` needs no special handling: `flush_and_close`
        // runs every iteration and drains what the kernel will take.
    }

    /// Flushes write buffers and closes every connection that is done:
    /// flushed + idle + (peer gone, protocol violation, or draining).
    fn flush_and_close(&mut self) {
        let mut dead: Vec<usize> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            flush_writes(conn);
            if conn.write_dead && conn.busy {
                // The requester died mid-request: flag the token so the
                // engine worker's `delivery_dead` hook sees it when the
                // solve completes (flight-recorder `disconnect` dumps).
                self.shared.dead.lock().unwrap_or_else(|e| e.into_inner()).insert(token);
            }
            let finished = conn.pending.is_empty() && !conn.busy && !conn.has_unflushed();
            // A dead write side means no response can ever be delivered;
            // only an in-flight solve keeps the slot (its emit clears
            // `busy` and the next sweep reaps it).
            let undeliverable = conn.write_dead && !conn.busy;
            if (finished && (conn.closing || conn.peer_closed || self.draining)) || undeliverable {
                dead.push(token);
            }
        }
        for token in dead {
            if let Some(conn) = self.conns.remove(&token) {
                if conn.registered {
                    let _ = self.poller.deregister(conn.stream.as_raw_fd());
                }
                self.engine.metrics.connections_active.dec();
                emit_conn_state(token, "close", conn.current_trace.as_deref());
            }
        }
    }

    /// Keeps each connection's registered interest truthful — the
    /// poller is level-triggered, so stale interest means a spinning
    /// loop (stale writable) or a stalled one (missing writable).
    fn update_interests(&mut self) {
        let max_pipelined = self.opts.max_pipelined;
        for (&token, conn) in self.conns.iter_mut() {
            let readable = !conn.peer_closed
                && !conn.write_dead
                && !conn.closing
                && conn.pending.len() < max_pipelined;
            let want = Interest { readable, writable: conn.has_unflushed() && !conn.write_dead };
            if want == conn.interest && (want != Interest::NONE) == conn.registered {
                continue;
            }
            let fd = conn.stream.as_raw_fd();
            if want == Interest::NONE {
                if conn.registered {
                    let _ = self.poller.deregister(fd);
                    conn.registered = false;
                }
            } else if conn.registered {
                let _ = self.poller.reregister(fd, Token(token), want);
            } else if self.poller.register(fd, Token(token), want).is_ok() {
                conn.registered = true;
            }
            conn.interest = want;
        }
    }
}

/// Emits a `conn.state` lifecycle event (Timing channel: connection
/// arrival order is wall-clock, never part of the determinism
/// contract). `trace` is the id of the connection's last request, when
/// it carried one — the loop thread has no ambient trace context, so
/// the correlation field is stamped explicitly.
fn emit_conn_state(token: usize, state: &'static str, trace: Option<&str>) {
    if sdc_obs::enabled() {
        static EV_CONN: sdc_obs::Callsite =
            sdc_obs::Callsite { name: "conn.state", channel: sdc_obs::Channel::Timing };
        let mut ev = sdc_obs::Event::new(&EV_CONN).u64("token", token as u64).str("state", state);
        if let Some(t) = trace {
            ev = ev.str("trace", t);
        }
        ev.emit();
    }
}

/// Reads everything the kernel has for this connection (level-triggered
/// poller: stopping early just means another event, but draining now is
/// cheaper). Consumed bytes are always kept. EOF is a *half*-close —
/// the peer may still be reading responses, so only `peer_closed` is
/// set; a hard error (ECONNRESET from an aborted peer) kills both
/// directions, so it also marks the write side dead, which is what lets
/// the loop flag a mid-solve disconnect.
fn read_available(conn: &mut Conn) {
    let mut scratch = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                conn.peer_closed = true;
                return;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.peer_closed = true;
                conn.write_dead = true;
                return;
            }
        }
    }
}

/// Carves complete frames out of `read_buf` into `pending` (up to
/// `max_pipelined` queued). Returns `true` if the unterminated tail
/// exceeds `max_frame` — the caller poisons the connection. The
/// `scanned` cursor makes repeated partial reads O(new bytes), not
/// O(buffer), and UTF-8 is validated per complete frame so a read
/// boundary inside a multibyte character is harmless.
fn extract_frames(conn: &mut Conn, max_frame: usize, max_pipelined: usize) -> bool {
    while conn.pending.len() < max_pipelined {
        match conn.read_buf[conn.scanned..].iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let end = conn.scanned + pos;
                if end > max_frame {
                    return true;
                }
                let text = String::from_utf8_lossy(&conn.read_buf[..end]);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    conn.pending.push_back(trimmed.to_string());
                }
                conn.read_buf.drain(..=end);
                conn.scanned = 0;
            }
            None => {
                // No newline anywhere: everything scanned, nothing to
                // rescan until more bytes arrive.
                conn.scanned = conn.read_buf.len();
                return conn.read_buf.len() > max_frame;
            }
        }
    }
    // Stopped at the pipelining cap with bytes (possibly whole frames)
    // still buffered; `scanned` stays put so they are found later.
    false
}

/// Writes as much of `write_buf` as the kernel accepts; errors mark the
/// write side dead (the next sweep reaps the connection).
fn flush_writes(conn: &mut Conn) {
    if conn.write_dead {
        conn.write_buf.clear();
        return;
    }
    let mut written = 0usize;
    while written < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[written..]) {
            Ok(0) => {
                conn.write_dead = true;
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.write_dead = true;
                break;
            }
        }
    }
    if written > 0 {
        conn.write_buf.drain(..written);
    }
}

//! The TCP transport: accept loop, per-connection worker threads,
//! graceful drain.
//!
//! Each accepted connection gets its own thread running a strict
//! request → response(s) loop over newline-delimited JSON frames (one
//! request at a time per connection; concurrency comes from opening
//! more connections — that is also what feeds the scheduler's
//! same-matrix batching). All semantics live in [`crate::engine`]; this
//! module only moves bytes.
//!
//! Shutdown: a `shutdown` request flips the engine's drain flag. The
//! accept loop (which polls the flag) stops taking connections, the
//! scheduler finishes every queued solve, and connection threads close
//! as soon as they are idle — in-flight requests always get their
//! response first.

use crate::engine::Engine;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often blocked reads/accepts re-check the drain flag. Also the
/// worst-case accept latency for a fresh connection, so it is kept
/// small; polling at this rate costs no measurable CPU.
const POLL: Duration = Duration::from_millis(10);

/// A running server; dropping it does *not* stop the threads — call
/// [`ServerHandle::wait`] after shutdown, or keep it alive for the
/// process lifetime.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (resolves `--port 0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine (for in-process tests and metrics scraping).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Blocks until a `shutdown` request has drained the server: joins
    /// the accept loop, finishes queued solves, joins every connection.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.engine.drain();
        let handles: Vec<_> =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) and starts
/// accepting connections for `engine`.
pub fn serve(engine: Arc<Engine>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_engine = engine.clone();
    let accept_conns = conns.clone();
    let accept = std::thread::Builder::new()
        .name("sdc-accept".into())
        .spawn(move || accept_loop(listener, accept_engine, accept_conns))
        .expect("cannot spawn accept thread");

    Ok(ServerHandle { addr: local, engine, accept: Some(accept), conns })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if engine.shutdown_requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                engine.metrics.connections_opened.inc();
                engine.metrics.connections_active.inc();
                let conn_engine = engine.clone();
                let handle = std::thread::Builder::new()
                    .name("sdc-conn".into())
                    .spawn(move || {
                        let _ = connection(stream, &conn_engine);
                        conn_engine.metrics.connections_active.dec();
                    })
                    .expect("cannot spawn connection thread");
                let mut conns = conns.lock().unwrap_or_else(|e| e.into_inner());
                // Sweep finished connections so a long-lived server does
                // not accumulate one dead JoinHandle per client forever.
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn connection(stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    // The listener is non-blocking (accept polls the drain flag); the
    // per-connection socket must not inherit that — reads block with a
    // timeout instead (Windows inherits the flag, Linux does not).
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // Frames are accumulated as raw bytes with `read_until`, not
    // `read_line`: on a timeout, `read_line` discards consumed bytes
    // whenever the partial tail is not valid UTF-8 (a poll tick landing
    // mid-multibyte-character would corrupt the frame), while
    // `read_until` keeps every byte it consumed. UTF-8 is validated
    // per complete frame instead.
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            // EOF: a trailing unterminated frame is not a request.
            Ok(0) => return Ok(()),
            Ok(_) if line.last() != Some(&b'\n') => {
                // EOF in the middle of a frame (read_until also returns
                // on EOF): nothing complete to answer.
                return Ok(());
            }
            Ok(_) => {
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    let resp = engine.handle_line(trimmed, &mut |event| {
                        // Best-effort streaming; a dead client surfaces
                        // on the final write below.
                        let _ = writeln!(writer, "{}", event.to_line());
                        let _ = writer.flush();
                    });
                    writeln!(writer, "{}", resp.to_line())?;
                    writer.flush()?;
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll tick (partial bytes stay in `line`); close
                // only when idle *and* draining.
                if engine.shutdown_requested() && line.is_empty() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

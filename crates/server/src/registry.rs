//! The content-hashed, ref-counted matrix registry.
//!
//! A `load_matrix` request parses/generates its matrix once and files
//! the resulting [`Problem`] under a *content key* — an FNV-1a hash of
//! the CSR structure and the exact bit patterns of its values — plus an
//! optional friendly alias. Every later `solve` that references the key
//! or alias shares the same [`std::sync::Arc`]`<Problem>`:
//!
//! * the CSR matrix and `b = A·1` are built exactly once;
//! * the SELL-C-σ engine and the `auto` format verdict live in the
//!   `Problem`'s `OnceLock`s, so the conversion happens at most once per
//!   matrix no matter how many solves (or concurrent batches) ask for it;
//! * re-loading identical content (even under a different name) is a
//!   cache hit — the old entry is reused and the parse is the only
//!   repeated work.
//!
//! Keys are stable across processes and platforms: the same matrix
//! always hashes to the same `m…` key, so clients may hard-code keys.

use sdc_campaigns::Problem;
use sdc_sparse::CsrMatrix;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a over the matrix shape, structure and exact values.
pub fn content_key(a: &CsrMatrix) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(a.nrows() as u64);
    eat(a.ncols() as u64);
    for &p in a.row_ptr() {
        eat(p as u64);
    }
    for &c in a.col_idx() {
        eat(c as u64);
    }
    for &v in a.values() {
        eat(v.to_bits());
    }
    format!("m{h:016x}")
}

/// One registry listing row.
#[derive(Clone, Debug)]
pub struct MatrixInfo {
    /// Content key.
    pub key: String,
    /// Aliases pointing at this key (sorted).
    pub names: Vec<String>,
    /// Display name of the underlying problem.
    pub problem: String,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Live references outside the registry (in-flight solves/batches).
    pub in_use: usize,
}

/// Exact (bit-level) content equality — NaN-safe, unlike `PartialEq`
/// on the value slices.
fn same_content(a: &CsrMatrix, b: &CsrMatrix) -> bool {
    a.nrows() == b.nrows()
        && a.ncols() == b.ncols()
        && a.row_ptr() == b.row_ptr()
        && a.col_idx() == b.col_idx()
        && a.values().len() == b.values().len()
        && a.values().iter().zip(b.values()).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[derive(Default)]
struct State {
    by_key: BTreeMap<String, Arc<Problem>>,
    aliases: BTreeMap<String, String>,
}

/// The shared registry (interior mutability; cheap to share via `Arc`).
#[derive(Default)]
pub struct MatrixRegistry {
    state: Mutex<State>,
}

impl MatrixRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Files `problem` under its content key (reusing an existing entry
    /// with identical content) and registers `name` as an alias.
    /// Returns `(key, shared problem, cache_hit)`.
    ///
    /// A key hit is trusted only after a bitwise content comparison: a
    /// 64-bit hash collision must never silently hand a solve the
    /// wrong operator (that would be exactly the silent corruption this
    /// project exists to catch). A genuine collision — distinct content,
    /// same hash — gets a salted key (`<key>-1`, `-2`, …) instead.
    pub fn insert(&self, name: Option<&str>, problem: Problem) -> (String, Arc<Problem>, bool) {
        let base = content_key(&problem.a);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut key = base.clone();
        let mut salt = 0usize;
        let (arc, hit) = loop {
            match st.by_key.get(&key) {
                Some(existing) if same_content(&existing.a, &problem.a) => {
                    break (existing.clone(), true);
                }
                Some(_collision) => {
                    salt += 1;
                    key = format!("{base}-{salt}");
                }
                None => {
                    let arc = Arc::new(problem);
                    st.by_key.insert(key.clone(), arc.clone());
                    break (arc, false);
                }
            }
        };
        if let Some(name) = name {
            st.aliases.insert(name.to_string(), key.clone());
        }
        (key, arc, hit)
    }

    /// Resolves a content key or alias to its shared problem.
    pub fn resolve(&self, key_or_name: &str) -> Option<(String, Arc<Problem>)> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = st.by_key.get(key_or_name) {
            return Some((key_or_name.to_string(), p.clone()));
        }
        let key = st.aliases.get(key_or_name)?;
        Some((key.clone(), st.by_key.get(key)?.clone()))
    }

    /// Number of distinct matrices held.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).by_key.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A listing snapshot, sorted by key.
    pub fn list(&self) -> Vec<MatrixInfo> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.by_key
            .iter()
            .map(|(key, p)| MatrixInfo {
                key: key.clone(),
                names: st
                    .aliases
                    .iter()
                    .filter(|(_, k)| *k == key)
                    .map(|(n, _)| n.clone())
                    .collect(),
                problem: p.name.clone(),
                rows: p.a.nrows(),
                cols: p.a.ncols(),
                nnz: p.a.nnz(),
                // One strong count is the registry's own; the rest are
                // in-flight borrowers.
                in_use: Arc::strong_count(p).saturating_sub(1),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_problem(m: usize) -> Problem {
        Problem::with_ones_solution(format!("p{m}"), sdc_sparse::gallery::poisson2d(m))
    }

    #[test]
    fn content_key_is_stable_and_content_sensitive() {
        let a = sdc_sparse::gallery::poisson2d(6);
        let k1 = content_key(&a);
        assert_eq!(k1, content_key(&a), "same content, same key");
        assert!(k1.starts_with('m') && k1.len() == 17, "{k1}");
        // A different matrix gets a different key, including a pure
        // value change with identical structure.
        assert_ne!(k1, content_key(&sdc_sparse::gallery::poisson2d(7)));
        let mut b = a.clone();
        let flipped = f64::from_bits(b.values()[0].to_bits() ^ 1);
        b.values_mut()[0] = flipped;
        assert_ne!(k1, content_key(&b), "value bit flips must change the key");
    }

    #[test]
    fn identical_content_is_a_hit_and_aliases_resolve() {
        let reg = MatrixRegistry::new();
        let (k1, p1, hit1) = reg.insert(Some("a"), poisson_problem(6));
        assert!(!hit1);
        let (k2, p2, hit2) = reg.insert(Some("b"), poisson_problem(6));
        assert!(hit2, "identical content must be cached");
        assert_eq!(k1, k2);
        assert!(Arc::ptr_eq(&p1, &p2), "hit must share the Arc");
        assert_eq!(reg.len(), 1);

        // Both aliases and the key itself resolve.
        for name in ["a", "b", k1.as_str()] {
            let (k, p) = reg.resolve(name).unwrap();
            assert_eq!(k, k1);
            assert!(Arc::ptr_eq(&p, &p1));
        }
        assert!(reg.resolve("missing").is_none());

        let info = reg.list();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].names, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(info[0].rows, 36);
    }

    #[test]
    fn hits_are_content_verified_and_nan_values_still_hit() {
        // The hit path compares bits, not PartialEq: a matrix carrying
        // NaN values (legal through the JSON NaN extension) must still
        // cache-hit against its identical reload instead of being
        // treated as a collision.
        let nan_problem = || {
            let mut coo = sdc_sparse::CooMatrix::new(2, 2);
            coo.push(0, 0, f64::NAN);
            coo.push(1, 1, 2.0);
            Problem::with_ones_solution("nan", coo.to_csr())
        };
        let reg = MatrixRegistry::new();
        let (k1, _, hit1) = reg.insert(None, nan_problem());
        assert!(!hit1);
        let (k2, _, hit2) = reg.insert(None, nan_problem());
        assert!(hit2, "bitwise-identical NaN content must hit");
        assert_eq!(k1, k2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn cache_hit_preserves_lazy_sell_conversion() {
        // The shared Problem's SELL engine is built once; a second load
        // of the same content sees the already-converted operator.
        let reg = MatrixRegistry::new();
        let (_, p1, _) = reg.insert(None, poisson_problem(8));
        let op1 = p1.operator(sdc_sparse::SparseFormat::Sell) as *const _ as *const u8;
        let (_, p2, hit) = reg.insert(None, poisson_problem(8));
        assert!(hit);
        let op2 = p2.operator(sdc_sparse::SparseFormat::Sell) as *const _ as *const u8;
        assert_eq!(op1, op2, "SELL engine must be converted once and shared");
    }
}

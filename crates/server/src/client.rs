//! The client library: a blocking NDJSON connection plus the
//! multi-connection load generator behind `solve-client bench` and the
//! `server_throughput` criterion bench.

use crate::protocol::is_final_frame;
use crate::shard::{route_frame, shard_of, Routing};
use sdc_campaigns::json::Json;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A blocking client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server closed the connection mid-request.
    Closed,
    /// A response line was not valid JSON (should never happen).
    BadFrame(String),
    /// A frame could not be routed deterministically in cluster mode.
    Routing(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::BadFrame(l) => write!(f, "unparseable response frame: {l}"),
            ClientError::Routing(msg) => write!(f, "routing error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    /// Connects to a `host:port` string (used by peer-to-peer
    /// replication, where shard addresses arrive as text).
    pub fn connect_str(addr: &str) -> std::io::Result<Self> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("address '{addr}' did not resolve"),
            )
        })?;
        Self::connect(resolved)
    }

    /// Sends one raw frame (a single line, no newline).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads the next frame verbatim (without the newline); `None` on a
    /// clean EOF.
    pub fn read_frame(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(if line.is_empty() { None } else { Some(line) }),
                Ok(_) => {
                    let trimmed = line.trim_end_matches(['\n', '\r']);
                    return Ok(Some(trimmed.to_string()));
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends a request frame and collects every frame it produces, in
    /// order: streamed events first, the final response last.
    pub fn request_lines(&mut self, line: &str) -> Result<Vec<String>, ClientError> {
        self.send_line(line)?;
        let mut out = Vec::new();
        loop {
            let Some(frame) = self.read_frame()? else {
                return Err(ClientError::Closed);
            };
            let parsed = Json::parse(&frame).map_err(|_| ClientError::BadFrame(frame.clone()))?;
            let done = is_final_frame(&parsed);
            out.push(frame);
            if done {
                return Ok(out);
            }
        }
    }

    /// Sends a request and returns the parsed final response (events
    /// are parsed and handed to `on_event`).
    pub fn call_with(
        &mut self,
        req: &Json,
        mut on_event: impl FnMut(Json),
    ) -> Result<Json, ClientError> {
        self.send_line(&req.to_line())?;
        loop {
            let Some(frame) = self.read_frame()? else {
                return Err(ClientError::Closed);
            };
            let parsed = Json::parse(&frame).map_err(|_| ClientError::BadFrame(frame))?;
            if is_final_frame(&parsed) {
                return Ok(parsed);
            }
            on_event(parsed);
        }
    }

    /// Sends a request and returns the parsed final response, ignoring
    /// streamed events.
    pub fn call(&mut self, req: &Json) -> Result<Json, ClientError> {
        self.call_with(req, |_| {})
    }
}

/// A client that addresses an N-shard cluster as one service.
///
/// Frames are routed with [`route_frame`]: reference-carrying commands
/// go to `shard_of(reference, N)`, campaigns pin to shard 0, and
/// stats/metrics/list/shutdown broadcast to every shard in index
/// order. Response bytes are concatenated in deterministic order, so a
/// request file played through a cluster of any size produces the same
/// per-request frames as `solve-client offline` (broadcast commands
/// yield one frame per shard).
pub struct ClusterClient {
    addrs: Vec<String>,
    shards: Vec<Client>,
}

impl ClusterClient {
    /// Connects to every shard, in index order.
    pub fn connect(addrs: &[String]) -> Result<Self, ClientError> {
        if addrs.is_empty() {
            return Err(ClientError::Routing("cluster needs at least one shard address".into()));
        }
        let shards =
            addrs.iter().map(|a| Client::connect_str(a)).collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self { addrs: addrs.to_vec(), shards })
    }

    /// Number of shards in the cluster.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index that owns `reference` in this cluster.
    pub fn owner_of(&self, reference: &str) -> usize {
        shard_of(reference, self.shards.len() as u64) as usize
    }

    /// Sends one raw frame to the shard(s) it routes to and collects
    /// every response frame, in deterministic order.
    ///
    /// Unparseable lines go to shard 0 so the server's structured
    /// `bad_request` answer matches offline mode byte for byte.
    /// `replicate` frames without an explicit `peers` list get the
    /// other shards' addresses filled in automatically.
    pub fn request_lines(&mut self, line: &str) -> Result<Vec<String>, ClientError> {
        let Ok(mut frame) = Json::parse(line) else {
            return self.shards[0].request_lines(line);
        };
        let routing = route_frame(&frame).map_err(ClientError::Routing)?;
        match routing {
            Routing::Reference(reference) => {
                let owner = self.owner_of(&reference);
                let is_replicate =
                    frame.get("cmd").and_then(|j| j.as_str().ok()) == Some("replicate");
                if is_replicate && frame.get("peers").is_none() && self.shards.len() > 1 {
                    let peers: Vec<Json> = (0..self.addrs.len())
                        .filter(|&i| i != owner)
                        .map(|i| Json::str(self.addrs[i].clone()))
                        .collect();
                    if let Json::Obj(m) = &mut frame {
                        m.insert("peers".to_string(), Json::Arr(peers));
                    }
                    return self.shards[owner].request_lines(&frame.to_line());
                }
                self.shards[owner].request_lines(line)
            }
            Routing::Pinned => self.shards[0].request_lines(line),
            Routing::Broadcast => {
                let mut out = Vec::new();
                for shard in &mut self.shards {
                    out.extend(shard.request_lines(line)?);
                }
                Ok(out)
            }
        }
    }
}

/// Aggregated load-generator results.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Total requests completed successfully.
    pub completed: usize,
    /// Requests that returned `ok:false` (e.g. `busy` rejections).
    pub rejected: usize,
    /// Per-request latencies, microseconds, sorted ascending.
    pub latencies_us: Vec<f64>,
    /// Wall-clock of the whole run, seconds.
    pub wall_s: f64,
}

impl LoadReport {
    /// The `p`-th latency percentile (0..=100), µs.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.latencies_us.len() as f64).ceil().max(1.0) as usize;
        self.latencies_us[rank.min(self.latencies_us.len()) - 1]
    }

    /// Completed requests per second.
    pub fn throughput(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.completed as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Renders the human summary table.
    pub fn render(&self) -> String {
        format!(
            "requests: {} ok, {} rejected | {:.1} req/s | latency µs: \
             p50={:.0} p90={:.0} p99={:.0} max={:.0}",
            self.completed,
            self.rejected,
            self.throughput(),
            self.percentile_us(50.0),
            self.percentile_us(90.0),
            self.percentile_us(99.0),
            self.latencies_us.last().copied().unwrap_or(0.0),
        )
    }
}

/// Drives `connections × requests_per_connection` copies of `req`
/// against the server: the load-generator mode of `solve-client` and
/// the workload of the `server_throughput` bench. Each connection runs
/// its requests sequentially; connections run concurrently.
pub fn load_gen(
    addr: SocketAddr,
    connections: usize,
    requests_per_connection: usize,
    req: &Json,
) -> Result<LoadReport, ClientError> {
    let started = Instant::now();
    let line = req.to_line();
    let workers: Vec<_> = (0..connections.max(1))
        .map(|_| {
            let line = line.clone();
            std::thread::spawn(move || -> Result<(Vec<f64>, usize), ClientError> {
                let mut client = Client::connect(addr)?;
                let mut latencies = Vec::with_capacity(requests_per_connection);
                let mut rejected = 0usize;
                for _ in 0..requests_per_connection {
                    let t = Instant::now();
                    let resp = client.request_lines(&line)?;
                    let us = t.elapsed().as_micros() as f64;
                    let last = resp.last().expect("request_lines is non-empty");
                    if last.contains("\"ok\":true") {
                        latencies.push(us);
                    } else {
                        rejected += 1;
                    }
                }
                Ok((latencies, rejected))
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut rejected = 0usize;
    for w in workers {
        let (l, r) = w
            .join()
            .map_err(|_| ClientError::Io(std::io::Error::other("load-gen worker panicked")))??;
        latencies.extend(l);
        rejected += r;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(LoadReport {
        completed: latencies.len(),
        rejected,
        latencies_us: latencies,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

/// Open-loop load generator: `connections` connections together issue
/// `rate_hz` requests per second on a fixed schedule, regardless of how
/// fast responses come back. Latency for each request is measured from
/// its *scheduled* send time, so a server that falls behind accrues
/// queueing delay instead of silently throttling the workload (the
/// coordinated-omission fix). Connection `c` owns the schedule slots
/// `c, c+connections, c+2·connections, …`.
pub fn load_gen_open(
    addr: SocketAddr,
    connections: usize,
    requests_per_connection: usize,
    rate_hz: f64,
    req: &Json,
) -> Result<LoadReport, ClientError> {
    let connections = connections.max(1);
    let rate = if rate_hz > 0.0 {
        rate_hz
    } else {
        return Err(ClientError::Routing("open-loop rate must be > 0".into()));
    };
    let started = Instant::now();
    let line = req.to_line();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(connections));
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let line = line.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || -> Result<(Vec<f64>, usize), ClientError> {
                let mut client = Client::connect(addr)?;
                barrier.wait();
                let t0 = Instant::now();
                let mut latencies = Vec::with_capacity(requests_per_connection);
                let mut rejected = 0usize;
                for k in 0..requests_per_connection {
                    let slot = c as f64 + (k * connections) as f64;
                    let due = Duration::from_secs_f64(slot / rate);
                    if let Some(wait) = due.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let scheduled = t0 + due;
                    let resp = client.request_lines(&line)?;
                    let us = scheduled.elapsed().as_micros() as f64;
                    let last = resp.last().expect("request_lines is non-empty");
                    if last.contains("\"ok\":true") {
                        latencies.push(us);
                    } else {
                        rejected += 1;
                    }
                }
                Ok((latencies, rejected))
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut rejected = 0usize;
    for w in workers {
        let (l, r) = w
            .join()
            .map_err(|_| ClientError::Io(std::io::Error::other("load-gen worker panicked")))??;
        latencies.extend(l);
        rejected += r;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(LoadReport {
        completed: latencies.len(),
        rejected,
        latencies_us: latencies,
        wall_s: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_report_percentiles_and_throughput() {
        let r = LoadReport {
            completed: 4,
            rejected: 1,
            latencies_us: vec![10.0, 20.0, 30.0, 100.0],
            wall_s: 2.0,
        };
        assert_eq!(r.percentile_us(50.0), 20.0);
        assert_eq!(r.percentile_us(100.0), 100.0);
        assert_eq!(r.throughput(), 2.0);
        assert!(r.render().contains("4 ok, 1 rejected"));
        let empty = LoadReport { completed: 0, rejected: 0, latencies_us: vec![], wall_s: 0.0 };
        assert_eq!(empty.percentile_us(50.0), 0.0);
        assert_eq!(empty.throughput(), 0.0);
    }
}

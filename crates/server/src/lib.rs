//! `sdc_server` — the long-lived solve service.
//!
//! Every capability of the workspace (GMRES/FGMRES/FT-GMRES with fault
//! injection, the campaign engine, the deterministic thread pool, the
//! CSR/SELL SpMV engines) was previously reachable only through
//! one-shot batch binaries: every invocation re-parsed its matrix,
//! re-converted storage formats and re-warmed nothing. This crate turns
//! the stack into a persistent process:
//!
//! * [`protocol`] — newline-delimited JSON requests/responses
//!   (`load_matrix`, `solve`, `campaign`, `stats`, `list`,
//!   `shutdown`), parsed strictly and answered canonically.
//! * [`registry`] — the content-hashed, ref-counted matrix cache:
//!   parse once, convert to SELL at most once, share across every
//!   solve and batch.
//! * [`scheduler`] — the bounded solve queue: same-matrix requests
//!   batch into one parallel dispatch; a full queue rejects loudly
//!   (`busy`) instead of buffering unbounded latency.
//! * [`engine`] — the transport-free service semantics, shared by the
//!   TCP server and `solve-client offline` so served and offline
//!   results can be byte-diffed.
//! * [`netpoll`] — a dependency-free readiness poller (epoll on Linux,
//!   poll(2) fallback) with a self-pipe waker.
//! * [`server`] — the readiness-driven event loop: one thread
//!   multiplexes every connection, no thread per client, no sleep
//!   ticks; graceful drain on `shutdown`.
//! * [`shard`] — deterministic key-space routing for the `--shard i/N`
//!   scale-out mode (`owner = fnv1a64(reference) % N`).
//! * [`metrics`] — request counters, queue gauges, cache hit rate,
//!   detector tallies and a solve-latency histogram behind `stats`.
//! * [`client`] — the blocking client, the cluster client that
//!   addresses N shards as one service, and the closed-/open-loop load
//!   generators used by `solve-client`, the e2e tests and the
//!   `server_throughput` bench.
//!
//! **Determinism guarantee.** A served `solve` or `campaign` with a
//! fixed request is bitwise identical to the offline equivalent at any
//! `--threads` setting *and any shard count*: result frames contain no
//! timestamps or scheduling-dependent values, floats serialize
//! round-trip-exact, and every kernel underneath is bitwise
//! thread-count-independent (`tests/determinism.rs` and
//! `tests/sharding.rs` pin this; the `serve_smoke` and `cluster_smoke`
//! CI jobs diff live servers against `solve-client offline`).
//!
//! See `crates/server/README.md` for the protocol reference.

pub mod client;
pub mod engine;
pub mod metrics;
pub mod netpoll;
pub mod protocol;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod shard;

pub use client::{load_gen, load_gen_open, Client, ClientError, ClusterClient, LoadReport};
pub use engine::{Engine, EngineConfig};
pub use metrics::Metrics;
pub use protocol::{ErrorCode, Request, SolveRequest, SolverKind};
pub use registry::MatrixRegistry;
pub use server::{serve, serve_with, ServerHandle, ServerOptions};
pub use shard::{shard_of, ShardSpec};

//! A dependency-free, `mio`-style readiness poller.
//!
//! `sdc_server`'s event loop needs exactly four primitives: register a
//! file descriptor with a token and an interest set, change that
//! interest, wait for readiness, and wake the waiting thread from
//! another thread. This module supplies them through raw syscalls
//! (the same no-`libc`, no-crates discipline as `sdc_parallel`):
//!
//! * **Linux** uses `epoll` — `epoll_create1` / `epoll_ctl` /
//!   `epoll_wait` — which is O(ready) per wait and holds the interest
//!   set in the kernel.
//! * **Other unix** falls back to `poll(2)`, rebuilding the pollfd
//!   array from a registration map on every wait. O(registered), but
//!   portable and behaviourally identical at our scale.
//!
//! Both backends are level-triggered: an fd stays ready until the
//! condition is consumed, so the event loop never needs to speculate
//! about edge re-arming — it just has to keep its interest sets
//! truthful (a conn that won't read must drop `READ` or the loop
//! spins).
//!
//! The cross-thread **waker** is a self-pipe: `Waker::wake` writes one
//! byte to a non-blocking pipe whose read end is registered in the
//! poller under a reserved token; `Poller::wait` drains it and reports
//! `woken = true` without surfacing an event. A full pipe means a wake
//! is already pending, so `EAGAIN` on the write is success.
//!
//! Both backends compile on Linux and both are unit-tested there, so
//! the fallback cannot rot silently.

#![allow(clippy::needless_range_loop)]

use std::io;
use std::os::unix::io::RawFd;
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[cfg(not(unix))]
compile_error!("sdc_server's event loop requires a unix-like OS (epoll or poll(2))");

/// Caller-chosen identifier attached to a registered fd and handed
/// back in every [`PollEvent`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Token(pub usize);

/// Which readiness conditions a registration subscribes to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const NONE: Interest = Interest { readable: false, writable: false };
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };
}

/// One readiness report. `closed` folds in hangup/error conditions
/// (`EPOLLHUP`/`EPOLLERR`, `POLLHUP`/`POLLERR`/`POLLNVAL`); the owner
/// should attempt I/O anyway — the definitive EOF/error comes from the
/// `read`/`write` call itself.
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    pub closed: bool,
}

// ---------------------------------------------------------------------------
// Raw syscall surface (shared by both backends).
// ---------------------------------------------------------------------------

extern "C" {
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

const F_GETFD: i32 = 1;
const F_SETFD: i32 = 2;
const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const FD_CLOEXEC: i32 = 1;

#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x0004;

fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on a caller-owned fd; no memory is shared.
    unsafe {
        let flags = fcntl(fd, F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

fn set_cloexec(fd: RawFd) -> io::Result<()> {
    // SAFETY: as above.
    unsafe {
        let flags = fcntl(fd, F_GETFD, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Raise the process fd soft limit to at least `want` (capped at the
/// hard limit). Multi-thousand-connection tests and benches call this
/// so they don't trip over conservative inherited ulimits; errors are
/// swallowed — the caller's accepts will fail loudly enough.
pub fn ensure_fd_limit(want: u64) {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: getrlimit fills the struct we own; setrlimit reads it.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 || lim.cur >= want {
            return;
        }
        lim.cur = want.min(lim.max);
        let _ = setrlimit(RLIMIT_NOFILE, &lim);
    }
}

// ---------------------------------------------------------------------------
// Waker (self-pipe write end; the read end lives inside the backend).
// ---------------------------------------------------------------------------

struct WakePipe {
    write_fd: RawFd,
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.write_fd) };
    }
}

/// Cross-thread wakeup handle. Clones share the pipe; the write end
/// stays open as long as any `Waker` (or the `Poller`) is alive, so a
/// completion callback outliving the loop degrades to a no-op wake
/// instead of writing to a recycled descriptor.
#[derive(Clone)]
pub struct Waker {
    pipe: Arc<WakePipe>,
}

impl Waker {
    /// Make the next (or current) [`Poller::wait`] return with
    /// `woken = true`. Never blocks: a full pipe already encodes a
    /// pending wake.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: one-byte write to our own non-blocking pipe fd.
        unsafe {
            let _ = write(self.pipe.write_fd, byte.as_ptr(), 1);
        }
    }
}

fn new_wake_pipe() -> io::Result<(RawFd, Arc<WakePipe>)> {
    let mut fds = [0i32; 2];
    // SAFETY: pipe() fills the two-slot array we own.
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    let (rd, wr) = (fds[0], fds[1]);
    for fd in [rd, wr] {
        if let Err(e) = set_nonblocking(fd).and_then(|()| set_cloexec(fd)) {
            // SAFETY: closing the fds we just created.
            unsafe {
                close(rd);
                close(wr);
            }
            return Err(e);
        }
    }
    Ok((rd, Arc::new(WakePipe { write_fd: wr })))
}

fn drain_pipe(fd: RawFd) {
    let mut buf = [0u8; 64];
    // SAFETY: reading into a stack buffer from our own fd until EAGAIN.
    unsafe { while read(fd, buf.as_mut_ptr(), buf.len()) > 0 {} }
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 0 < t < 1ms request doesn't busy-spin.
        Some(t) => t.as_millis().min(i32::MAX as u128).max(u128::from(!t.is_zero())) as i32,
    }
}

// ---------------------------------------------------------------------------
// Linux backend: epoll.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub use epoll_backend::EpollPoller;

#[cfg(target_os = "linux")]
mod epoll_backend {
    use super::*;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Matches the kernel's `struct epoll_event`: packed on x86-64
    /// (the one ABI where the kernel really lays it out unaligned).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// Reserved `data` value for the wake pipe — `Token(usize::MAX)`
    /// would collide only after 2^64 connections.
    const WAKE_DATA: u64 = u64::MAX;

    pub struct EpollPoller {
        epfd: RawFd,
        wake_rd: RawFd,
        pipe: Arc<WakePipe>,
        buf: Mutex<Vec<EpollEvent>>,
    }

    impl EpollPoller {
        pub fn new() -> io::Result<EpollPoller> {
            // SAFETY: plain syscall; fd ownership is taken by the struct.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let (wake_rd, pipe) = match new_wake_pipe() {
                Ok(p) => p,
                Err(e) => {
                    // SAFETY: closing the epoll fd we just created.
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = EpollPoller {
                epfd,
                wake_rd,
                pipe,
                buf: Mutex::new(vec![EpollEvent { events: 0, data: 0 }; 256]),
            };
            poller.ctl(EPOLL_CTL_ADD, wake_rd, EPOLLIN, WAKE_DATA)?;
            Ok(poller)
        }

        pub fn waker(&self) -> Waker {
            Waker { pipe: self.pipe.clone() }
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            // SAFETY: `ev` lives across the call; the kernel copies it.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = 0;
            if interest.readable {
                m |= EPOLLIN;
            }
            if interest.writable {
                m |= EPOLLOUT;
            }
            m
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Self::mask(interest), token.0 as u64)
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Self::mask(interest), token.0 as u64)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait for readiness; fills `events` (cleared first) and
        /// returns whether the waker fired. `None` blocks forever.
        pub fn wait(
            &self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<bool> {
            events.clear();
            let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
            let n = loop {
                // SAFETY: the kernel writes at most `buf.len()` events
                // into the locked, owned buffer.
                let n = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms(timeout))
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            let mut woken = false;
            for i in 0..n {
                let ev = buf[i];
                let (bits, data) = (ev.events, ev.data);
                if data == WAKE_DATA {
                    drain_pipe(self.wake_rd);
                    woken = true;
                    continue;
                }
                events.push(PollEvent {
                    token: Token(data as usize),
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(woken)
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: closing fds this struct owns.
            unsafe {
                close(self.epfd);
                close(self.wake_rd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable backend: poll(2).
// ---------------------------------------------------------------------------

pub use poll_backend::PollBackend;

mod poll_backend {
    use super::*;
    use std::collections::BTreeMap;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    /// `poll(2)`-based fallback. The interest set lives in userspace
    /// and the pollfd array is rebuilt per wait — fine for hundreds of
    /// fds, and the semantics (level-triggered, same event folding)
    /// match the epoll backend exactly.
    pub struct PollBackend {
        wake_rd: RawFd,
        pipe: Arc<WakePipe>,
        registered: Mutex<BTreeMap<RawFd, (Token, Interest)>>,
    }

    impl PollBackend {
        pub fn new() -> io::Result<PollBackend> {
            let (wake_rd, pipe) = new_wake_pipe()?;
            Ok(PollBackend { wake_rd, pipe, registered: Mutex::new(BTreeMap::new()) })
        }

        pub fn waker(&self) -> Waker {
            Waker { pipe: self.pipe.clone() }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<RawFd, (Token, Interest)>> {
            self.registered.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            if self.lock().insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("fd {fd} is already registered"),
                ));
            }
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            match self.lock().get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("fd {fd} is not registered"),
                )),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            match self.lock().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("fd {fd} is not registered"),
                )),
            }
        }

        pub fn wait(
            &self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<bool> {
            events.clear();
            let mut fds = vec![PollFd { fd: self.wake_rd, events: POLLIN, revents: 0 }];
            let mut tokens = vec![Token(usize::MAX)];
            for (&fd, &(token, interest)) in self.lock().iter() {
                let mut mask = 0;
                if interest.readable {
                    mask |= POLLIN;
                }
                if interest.writable {
                    mask |= POLLOUT;
                }
                fds.push(PollFd { fd, events: mask, revents: 0 });
                tokens.push(token);
            }
            let n = loop {
                // SAFETY: poll writes revents inside the owned vec.
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms(timeout)) };
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(false);
            }
            let mut woken = false;
            if fds[0].revents != 0 {
                drain_pipe(self.wake_rd);
                woken = true;
            }
            for i in 1..fds.len() {
                let r = fds[i].revents;
                if r == 0 {
                    continue;
                }
                events.push(PollEvent {
                    token: tokens[i],
                    readable: r & POLLIN != 0,
                    writable: r & POLLOUT != 0,
                    closed: r & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(woken)
        }
    }

    impl Drop for PollBackend {
        fn drop(&mut self) {
            // SAFETY: closing the read end this struct owns.
            unsafe { close(self.wake_rd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Default poller for the platform.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
type DefaultBackend = EpollPoller;
#[cfg(not(target_os = "linux"))]
type DefaultBackend = PollBackend;

/// The platform's readiness poller: epoll on Linux, `poll(2)`
/// elsewhere. One instance drives one event loop.
pub struct Poller {
    backend: DefaultBackend,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { backend: DefaultBackend::new()? })
    }

    /// A cheap, cloneable cross-thread wakeup handle for this poller.
    pub fn waker(&self) -> Waker {
        self.backend.waker()
    }

    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)
    }

    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.backend.reregister(fd, token, interest)
    }

    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.backend.deregister(fd)
    }

    /// Block until an event, the timeout, or a wake. Returns whether
    /// the waker fired; readiness lands in `events` (cleared first).
    pub fn wait(&self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<bool> {
        self.backend.wait(events, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    /// Both backends expose the same inherent API, so the conformance
    /// suite is written once and instantiated per backend.
    macro_rules! backend_suite {
        ($modname:ident, $backend:ty) => {
            mod $modname {
                use super::*;

                fn pair() -> (TcpStream, TcpStream) {
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (b, _) = listener.accept().unwrap();
                    a.set_nonblocking(true).unwrap();
                    b.set_nonblocking(true).unwrap();
                    (a, b)
                }

                #[test]
                fn readable_after_peer_write() {
                    let poller = <$backend>::new().unwrap();
                    let (mut a, b) = pair();
                    poller.register(b.as_raw_fd(), Token(7), Interest::READ).unwrap();
                    let mut events = Vec::new();
                    // Nothing pending: a zero timeout returns empty.
                    let woken = poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
                    assert!(!woken && events.is_empty(), "spurious event {events:?}");
                    a.write_all(b"ping").unwrap();
                    poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                    assert_eq!(events.len(), 1);
                    assert_eq!(events[0].token, Token(7));
                    assert!(events[0].readable);
                }

                #[test]
                fn level_triggered_until_consumed_and_interest_changes_apply() {
                    let poller = <$backend>::new().unwrap();
                    let (mut a, mut b) = pair();
                    poller.register(b.as_raw_fd(), Token(1), Interest::READ).unwrap();
                    a.write_all(b"x").unwrap();
                    let mut events = Vec::new();
                    for _ in 0..3 {
                        // Unconsumed data keeps reporting readable.
                        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                        assert!(events.iter().any(|e| e.token == Token(1) && e.readable));
                    }
                    // Dropping read interest silences it even though the
                    // byte is still buffered.
                    poller.reregister(b.as_raw_fd(), Token(1), Interest::WRITE).unwrap();
                    poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
                    assert!(events.iter().all(|e| !e.readable), "{events:?}");
                    assert!(events.iter().any(|e| e.token == Token(1) && e.writable));
                    let mut buf = [0u8; 8];
                    assert_eq!(b.read(&mut buf).unwrap(), 1);
                }

                #[test]
                fn waker_wakes_a_blocking_wait() {
                    let poller = std::sync::Arc::new(<$backend>::new().unwrap());
                    let waker = poller.waker();
                    let t = std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(30));
                        waker.wake();
                        // Coalescing: a second wake before the drain must
                        // not corrupt anything.
                        waker.wake();
                    });
                    let mut events = Vec::new();
                    let woken = poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
                    assert!(woken, "waker must interrupt the wait");
                    assert!(events.is_empty(), "wake is not an fd event: {events:?}");
                    t.join().unwrap();
                    // Drained: a second wake racing the first drain may
                    // leave one pending byte (reported once more), but
                    // wakes never accumulate beyond that.
                    let leftover =
                        poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
                    let woken = poller.wait(&mut events, Some(Duration::from_millis(0))).unwrap();
                    assert!(!woken, "wakes must drain, not accumulate (leftover={leftover})");
                }

                #[test]
                fn deregister_stops_events_and_hangup_is_reported() {
                    let poller = <$backend>::new().unwrap();
                    let (mut a, b) = pair();
                    let (c, d) = pair();
                    poller.register(b.as_raw_fd(), Token(1), Interest::READ).unwrap();
                    poller.register(d.as_raw_fd(), Token(2), Interest::READ).unwrap();
                    a.write_all(b"x").unwrap();
                    poller.deregister(b.as_raw_fd()).unwrap();
                    let mut events = Vec::new();
                    poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
                    assert!(events.iter().all(|e| e.token != Token(1)), "{events:?}");
                    // Peer close surfaces as readable and/or closed.
                    drop(c);
                    poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
                    let ev = events.iter().find(|e| e.token == Token(2)).expect("hangup event");
                    assert!(ev.readable || ev.closed);
                }
            }
        };
    }

    backend_suite!(default_poller, Poller);
    #[cfg(target_os = "linux")]
    backend_suite!(poll_fallback, PollBackend);

    #[test]
    fn ensure_fd_limit_is_idempotent() {
        ensure_fd_limit(256);
        ensure_fd_limit(256);
    }
}

//! Server metrics: request counters, queue gauges, cache hit rate,
//! detector outcome tallies and a solve-latency histogram — all plain
//! atomics, rendered as one canonical JSON object by the `stats`
//! command.
//!
//! Everything here is observability-only: no solve result ever depends
//! on a metric, so the counters can be maintained with relaxed ordering
//! and read without stopping the world.

use sdc_campaigns::json::Json;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Number of log₂ latency buckets: bucket `i` counts solves with
/// latency `< 2^i` µs; the last bucket is the overflow.
pub const LATENCY_BUCKETS: usize = 24;

/// A log₂-bucketed latency histogram (microseconds).
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.total_us.fetch_add(us, Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Estimates the `p`-th percentile (0..=100) from the buckets; the
    /// estimate is the upper bound of the bucket the rank falls in.
    pub fn percentile_us(&self, p: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << i) as f64;
            }
        }
        (1u64 << (LATENCY_BUCKETS - 1)) as f64
    }

    /// Renders count, mean and percentile estimates plus the raw
    /// buckets (upper-bound µs → count, zero buckets omitted).
    pub fn to_json(&self) -> Json {
        let count = self.count.load(Relaxed);
        let total = self.total_us.load(Relaxed);
        let mean = if count > 0 { total as f64 / count as f64 } else { 0.0 };
        let buckets: Vec<(String, Json)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Relaxed);
                (c > 0).then(|| (format!("le_{}", 1u64 << i), Json::Num(c as f64)))
            })
            .collect();
        Json::obj(vec![
            ("count", Json::Num(count as f64)),
            ("mean_us", Json::Num(mean)),
            ("p50_us", Json::Num(self.percentile_us(50.0))),
            ("p90_us", Json::Num(self.percentile_us(90.0))),
            ("p99_us", Json::Num(self.percentile_us(99.0))),
            ("buckets_us", Json::Obj(buckets.into_iter().collect())),
        ])
    }
}

/// The request kinds the server counts.
pub const REQUEST_KINDS: [&str; 6] =
    ["campaign", "list", "load_matrix", "shutdown", "solve", "stats"];

/// All server counters.
#[derive(Default)]
pub struct Metrics {
    /// Requests per kind, indexed like [`REQUEST_KINDS`].
    requests: [AtomicU64; REQUEST_KINDS.len()],
    /// Frames rejected as malformed or invalid.
    pub protocol_errors: AtomicU64,
    /// Solves rejected with `busy` (queue full).
    pub busy_rejects: AtomicU64,
    /// `load_matrix` content-cache hits / misses.
    pub cache_hits: AtomicU64,
    /// See [`Metrics::cache_hits`].
    pub cache_misses: AtomicU64,
    /// Solves that converged.
    pub solves_converged: AtomicU64,
    /// Solves that terminated without convergence.
    pub solves_unconverged: AtomicU64,
    /// Scheduler dispatches (a batch of ≥ 1 same-matrix solves).
    pub batches_dispatched: AtomicU64,
    /// Solves that rode in a batch of ≥ 2.
    pub batched_solves: AtomicU64,
    /// Current solve-queue depth.
    pub queue_depth: AtomicUsize,
    /// High-water mark of the queue depth.
    pub queue_peak: AtomicUsize,
    /// Detector violations observed across all served solves.
    pub detector_events: AtomicU64,
    /// Faults actually committed by served injections.
    pub injections_committed: AtomicU64,
    /// Inner results rejected by the reliable outer validation.
    pub inner_rejections: AtomicU64,
    /// Connections accepted since startup.
    pub connections_opened: AtomicU64,
    /// Currently open connections.
    pub connections_active: AtomicUsize,
    /// Campaign jobs completed.
    pub campaigns_completed: AtomicU64,
    /// Campaign records streamed to clients.
    pub campaign_records_streamed: AtomicU64,
    /// Solve latency (queue wait + solve), microseconds.
    pub solve_latency: LatencyHistogram,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request of `kind` (a [`REQUEST_KINDS`] entry).
    pub fn count_request(&self, kind: &str) {
        if let Ok(i) = REQUEST_KINDS.binary_search(&kind) {
            self.requests[i].fetch_add(1, Relaxed);
        }
    }

    /// Updates the queue gauges after a push/pop to `depth`.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Relaxed);
        self.queue_peak.fetch_max(depth, Relaxed);
    }

    /// The full snapshot the `stats` command returns. Server-level
    /// configuration (thread count, queue capacity, …) is passed in by
    /// the engine so the snapshot is self-describing.
    pub fn snapshot(&self, server: Vec<(&str, Json)>) -> Json {
        let requests: Vec<(String, Json)> = REQUEST_KINDS
            .iter()
            .zip(&self.requests)
            .map(|(k, c)| (k.to_string(), Json::Num(c.load(Relaxed) as f64)))
            .collect();
        let g = |a: &AtomicU64| Json::Num(a.load(Relaxed) as f64);
        let gu = |a: &AtomicUsize| Json::Num(a.load(Relaxed) as f64);
        let mut fields = vec![
            ("requests", Json::Obj(requests.into_iter().collect())),
            ("protocol_errors", g(&self.protocol_errors)),
            (
                "cache",
                Json::obj(vec![("hits", g(&self.cache_hits)), ("misses", g(&self.cache_misses))]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("depth", gu(&self.queue_depth)),
                    ("peak", gu(&self.queue_peak)),
                    ("busy_rejects", g(&self.busy_rejects)),
                ]),
            ),
            (
                "scheduler",
                Json::obj(vec![
                    ("batches_dispatched", g(&self.batches_dispatched)),
                    ("batched_solves", g(&self.batched_solves)),
                ]),
            ),
            (
                "solves",
                Json::obj(vec![
                    ("converged", g(&self.solves_converged)),
                    ("unconverged", g(&self.solves_unconverged)),
                ]),
            ),
            (
                "detector",
                Json::obj(vec![
                    ("events", g(&self.detector_events)),
                    ("injections_committed", g(&self.injections_committed)),
                    ("inner_rejections", g(&self.inner_rejections)),
                ]),
            ),
            (
                "connections",
                Json::obj(vec![
                    ("opened", g(&self.connections_opened)),
                    ("active", gu(&self.connections_active)),
                ]),
            ),
            (
                "campaigns",
                Json::obj(vec![
                    ("completed", g(&self.campaigns_completed)),
                    ("records_streamed", g(&self.campaign_records_streamed)),
                ]),
            ),
            ("solve_latency", self.solve_latency.to_json()),
        ];
        fields.extend(server);
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kinds_are_sorted_for_binary_search() {
        let mut sorted = REQUEST_KINDS;
        sorted.sort_unstable();
        assert_eq!(sorted, REQUEST_KINDS);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(50.0), 0.0, "empty histogram");
        for us in [1u64, 3, 3, 3, 100, 100, 5000] {
            h.record(us);
        }
        assert_eq!(h.count(), 7);
        // p50 falls in the 3µs observations → bucket upper bound 4.
        assert_eq!(h.percentile_us(50.0), 4.0);
        // p99 is the slowest observation's bucket (5000 < 8192).
        assert_eq!(h.percentile_us(99.0), 8192.0);
        let j = h.to_json();
        assert_eq!(j.field("count").unwrap().as_usize().unwrap(), 7);
        // Canonical serialization.
        let line = j.to_line();
        assert_eq!(Json::parse(&line).unwrap().to_line(), line);
    }

    #[test]
    fn huge_latencies_land_in_the_overflow_bucket() {
        let h = LatencyHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.percentile_us(50.0), (1u64 << (LATENCY_BUCKETS - 1)) as f64);
    }

    #[test]
    fn snapshot_counts_requests_and_embeds_server_fields() {
        let m = Metrics::new();
        m.count_request("solve");
        m.count_request("solve");
        m.count_request("stats");
        m.count_request("not_a_kind"); // ignored, not a panic
        m.set_queue_depth(3);
        m.set_queue_depth(1);
        let snap = m.snapshot(vec![("threads", Json::Num(2.0))]);
        assert_eq!(snap.field("requests").unwrap().field("solve").unwrap().as_usize().unwrap(), 2);
        assert_eq!(snap.field("threads").unwrap().as_usize().unwrap(), 2);
        assert_eq!(snap.field("queue").unwrap().field("peak").unwrap().as_usize().unwrap(), 3);
        assert_eq!(snap.field("queue").unwrap().field("depth").unwrap().as_usize().unwrap(), 1);
    }
}

//! Server metrics: request counters, queue gauges, cache hit rate,
//! detector outcome tallies and a solve-latency histogram — all backed
//! by the workspace [`sdc_obs::metrics::Registry`], rendered two ways:
//! as the canonical JSON object the `stats` command has always
//! returned (byte-for-byte unchanged by the migration), and as
//! Prometheus text exposition via the `metrics` command.
//!
//! Everything here is observability-only: no solve result ever depends
//! on a metric, so the counters are maintained with relaxed ordering
//! and read without stopping the world.

use sdc_campaigns::json::Json;
use sdc_obs::metrics::{Counter, Gauge, Histogram, Registry};

/// Number of log₂ latency buckets: bucket `i` counts solves with
/// latency `< 2^i` µs; the last bucket is the overflow.
pub const LATENCY_BUCKETS: usize = sdc_obs::metrics::HISTOGRAM_BUCKETS;

/// The request kinds the legacy `stats` object tallies (sorted for
/// binary search). The `metrics` request is deliberately NOT in this
/// list: `stats` predates it and its JSON shape is pinned byte-for-byte
/// by goldens, so the new kind only appears in the Prometheus
/// exposition (`sdc_requests_total{kind="metrics"}`).
pub const REQUEST_KINDS: [&str; 6] =
    ["campaign", "list", "load_matrix", "shutdown", "solve", "stats"];

/// Renders a latency [`Histogram`] as the `stats` JSON shape the
/// original bespoke histogram produced: count, mean and percentile
/// estimates plus the raw buckets (upper-bound µs → count, zero
/// buckets omitted).
pub fn latency_json(h: &Histogram) -> Json {
    let snap = h.snapshot();
    let buckets: Vec<(String, Json)> = snap
        .buckets
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (format!("le_{}", 1u64 << i), Json::Num(c as f64)))
        .collect();
    Json::obj(vec![
        ("count", Json::Num(snap.count as f64)),
        ("mean_us", Json::Num(snap.mean())),
        ("p50_us", Json::Num(snap.percentile(50.0))),
        ("p90_us", Json::Num(snap.percentile(90.0))),
        ("p99_us", Json::Num(snap.percentile(99.0))),
        ("buckets_us", Json::Obj(buckets.into_iter().collect())),
    ])
}

/// All server counters, as handles into one obs registry.
pub struct Metrics {
    registry: Registry,
    /// Requests per kind, indexed like [`REQUEST_KINDS`].
    requests: [Counter; REQUEST_KINDS.len()],
    /// The `metrics` request kind (Prometheus-only; see
    /// [`REQUEST_KINDS`]).
    metrics_requests: Counter,
    /// The `replicate` request kind — Prometheus-only, same precedent
    /// as `metrics`: the `stats` requests object predates it and its
    /// shape is pinned.
    replicate_requests: Counter,
    /// Matrices pushed to peer shards by `replicate` requests.
    pub replications: Counter,
    /// Event-loop wakeups (poll returns): readiness, completions or
    /// drain ticks.
    pub loop_wakeups: Counter,
    /// Frames rejected for exceeding the per-frame size limit.
    pub frames_oversized: Counter,
    /// Flight-recorder post-mortems written to `--flight-dir`.
    pub flight_dumps: Counter,
    /// This server's shard index (0 when unsharded).
    pub shard_index: Gauge,
    /// Total shards in the cluster (1 when unsharded).
    pub shard_count: Gauge,
    /// Frames rejected as malformed or invalid.
    pub protocol_errors: Counter,
    /// Solves rejected with `busy` (queue full).
    pub busy_rejects: Counter,
    /// `load_matrix` content-cache hits / misses.
    pub cache_hits: Counter,
    /// See [`Metrics::cache_hits`].
    pub cache_misses: Counter,
    /// Solves that converged.
    pub solves_converged: Counter,
    /// Solves that terminated without convergence.
    pub solves_unconverged: Counter,
    /// Scheduler dispatches (a batch of ≥ 1 same-matrix solves).
    pub batches_dispatched: Counter,
    /// Solves that rode in a batch of ≥ 2.
    pub batched_solves: Counter,
    /// Current solve-queue depth.
    pub queue_depth: Gauge,
    /// High-water mark of the queue depth.
    pub queue_peak: Gauge,
    /// Detector violations observed across all served solves.
    pub detector_events: Counter,
    /// Faults actually committed by served injections.
    pub injections_committed: Counter,
    /// Inner results rejected by the reliable outer validation.
    pub inner_rejections: Counter,
    /// Connections accepted since startup.
    pub connections_opened: Counter,
    /// Currently open connections.
    pub connections_active: Gauge,
    /// Campaign jobs completed.
    pub campaigns_completed: Counter,
    /// Campaign records streamed to clients.
    pub campaign_records_streamed: Counter,
    /// Solve latency (queue wait + solve), microseconds.
    pub solve_latency: Histogram,
    /// Frozen worker-pool size (set once by the engine).
    pub server_threads: Gauge,
    /// Lane width of the active SIMD kernel ISA (4 = AVX2, 1 = scalar
    /// fallback; set at exposition time like the other server gauges).
    pub simd_lanes: Gauge,
    /// Solve-queue capacity (set once by the engine).
    pub queue_capacity: Gauge,
    /// Matrices currently registered (set at exposition time).
    pub matrices_registered: Gauge,
    /// 1 while draining after a `shutdown` request.
    pub draining: Gauge,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A zeroed metrics block with every series registered.
    pub fn new() -> Self {
        let r = Registry::new();
        const REQ_HELP: &str = "Requests handled, by protocol command.";
        let requests =
            REQUEST_KINDS.map(|k| r.labeled_counter("sdc_requests_total", REQ_HELP, "kind", k));
        let metrics_requests = r.labeled_counter("sdc_requests_total", REQ_HELP, "kind", "metrics");
        let replicate_requests =
            r.labeled_counter("sdc_requests_total", REQ_HELP, "kind", "replicate");
        Self {
            requests,
            metrics_requests,
            replicate_requests,
            replications: r.counter(
                "sdc_replications_total",
                "Matrices pushed to peer shards by replicate requests.",
            ),
            loop_wakeups: r.counter("sdc_loop_wakeups_total", "Event-loop wakeups."),
            frames_oversized: r.counter(
                "sdc_frames_oversized_total",
                "Frames rejected for exceeding the per-frame size limit.",
            ),
            flight_dumps: r.counter(
                "sdc_flight_dumps_total",
                "Flight-recorder post-mortems written to --flight-dir.",
            ),
            shard_index: r.gauge("sdc_shard_index", "This server's shard index (0 unsharded)."),
            shard_count: r.gauge("sdc_shard_count", "Total shards in the cluster (1 unsharded)."),
            protocol_errors: r
                .counter("sdc_protocol_errors_total", "Frames rejected as malformed or invalid."),
            busy_rejects: r
                .counter("sdc_busy_rejects_total", "Solves rejected because the queue was full."),
            cache_hits: r.counter("sdc_cache_hits_total", "load_matrix content-cache hits."),
            cache_misses: r.counter("sdc_cache_misses_total", "load_matrix content-cache misses."),
            solves_converged: r.labeled_counter(
                "sdc_solves_total",
                "Completed solves, by outcome.",
                "outcome",
                "converged",
            ),
            solves_unconverged: r.labeled_counter(
                "sdc_solves_total",
                "Completed solves, by outcome.",
                "outcome",
                "unconverged",
            ),
            batches_dispatched: r.counter(
                "sdc_batches_dispatched_total",
                "Scheduler dispatches (each a batch of >= 1 same-matrix solves).",
            ),
            batched_solves: r
                .counter("sdc_batched_solves_total", "Solves that rode in a batch of >= 2."),
            queue_depth: r.gauge("sdc_queue_depth", "Current solve-queue depth."),
            queue_peak: r.gauge("sdc_queue_depth_peak", "High-water mark of the queue depth."),
            detector_events: r.counter(
                "sdc_detector_events_total",
                "Detector violations observed across all served solves.",
            ),
            injections_committed: r.counter(
                "sdc_injections_committed_total",
                "Faults actually committed by served injections.",
            ),
            inner_rejections: r.counter(
                "sdc_inner_rejections_total",
                "Inner results rejected by the reliable outer validation.",
            ),
            connections_opened: r
                .counter("sdc_connections_opened_total", "Connections accepted since startup."),
            connections_active: r.gauge("sdc_connections_active", "Currently open connections."),
            campaigns_completed: r
                .counter("sdc_campaigns_completed_total", "Campaign jobs completed."),
            campaign_records_streamed: r.counter(
                "sdc_campaign_records_streamed_total",
                "Campaign records streamed to clients.",
            ),
            solve_latency: r
                .histogram("sdc_solve_latency_us", "Solve latency (queue wait + solve), in us."),
            server_threads: r.gauge("sdc_threads", "Frozen worker-pool size."),
            simd_lanes: r.gauge(
                "sdc_simd_lanes",
                "Lane width of the active SIMD kernel ISA (1 = scalar fallback).",
            ),
            queue_capacity: r.gauge("sdc_queue_capacity", "Solve-queue capacity."),
            matrices_registered: r
                .gauge("sdc_matrices_registered", "Matrices currently in the registry."),
            draining: r.gauge("sdc_draining", "1 while draining after a shutdown request."),
            registry: r,
        }
    }

    /// Counts one request of `kind` (a [`REQUEST_KINDS`] entry or
    /// `metrics`; anything else is silently ignored).
    pub fn count_request(&self, kind: &str) {
        if let Ok(i) = REQUEST_KINDS.binary_search(&kind) {
            self.requests[i].inc();
        } else if kind == "metrics" {
            self.metrics_requests.inc();
        } else if kind == "replicate" {
            self.replicate_requests.inc();
        }
    }

    /// Tallies one completed solve's outcome and detector/injection
    /// counts (called on the worker thread that ran it).
    pub fn record_solve(&self, s: &sdc_gmres::prelude::SolveSummary) {
        if s.converged {
            self.solves_converged.inc();
        } else {
            self.solves_unconverged.inc();
        }
        self.detector_events.add(s.detector_events as u64);
        self.injections_committed.add(s.injections as u64);
        self.inner_rejections.add(s.inner_rejections as u64);
    }

    /// Updates the queue gauges after a push/pop to `depth`.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as u64);
        self.queue_peak.set_max(depth as u64);
    }

    /// Renders every registered series as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Flattens every series to sorted `(name, value)` pairs — the
    /// machine-readable snapshot `solve-client bench --metrics-out`
    /// dumps for the bench gate.
    pub fn series(&self) -> Vec<(String, u64)> {
        self.registry.snapshot()
    }

    /// The full snapshot the `stats` command returns. Server-level
    /// configuration (thread count, queue capacity, …) is passed in by
    /// the engine so the snapshot is self-describing.
    pub fn snapshot(&self, server: Vec<(&str, Json)>) -> Json {
        let requests: Vec<(String, Json)> = REQUEST_KINDS
            .iter()
            .zip(&self.requests)
            .map(|(k, c)| (k.to_string(), Json::Num(c.get() as f64)))
            .collect();
        let g = |c: &Counter| Json::Num(c.get() as f64);
        let gu = |g: &Gauge| Json::Num(g.get() as f64);
        let mut fields = vec![
            ("requests", Json::Obj(requests.into_iter().collect())),
            ("protocol_errors", g(&self.protocol_errors)),
            (
                "cache",
                Json::obj(vec![("hits", g(&self.cache_hits)), ("misses", g(&self.cache_misses))]),
            ),
            (
                "queue",
                Json::obj(vec![
                    ("depth", gu(&self.queue_depth)),
                    ("peak", gu(&self.queue_peak)),
                    ("busy_rejects", g(&self.busy_rejects)),
                ]),
            ),
            (
                "scheduler",
                Json::obj(vec![
                    ("batches_dispatched", g(&self.batches_dispatched)),
                    ("batched_solves", g(&self.batched_solves)),
                ]),
            ),
            (
                "solves",
                Json::obj(vec![
                    ("converged", g(&self.solves_converged)),
                    ("unconverged", g(&self.solves_unconverged)),
                ]),
            ),
            (
                "detector",
                Json::obj(vec![
                    ("events", g(&self.detector_events)),
                    ("injections_committed", g(&self.injections_committed)),
                    ("inner_rejections", g(&self.inner_rejections)),
                ]),
            ),
            (
                "connections",
                Json::obj(vec![
                    ("opened", g(&self.connections_opened)),
                    ("active", gu(&self.connections_active)),
                ]),
            ),
            (
                "campaigns",
                Json::obj(vec![
                    ("completed", g(&self.campaigns_completed)),
                    ("records_streamed", g(&self.campaign_records_streamed)),
                ]),
            ),
            ("solve_latency", latency_json(&self.solve_latency)),
        ];
        fields.extend(server);
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kinds_are_sorted_for_binary_search() {
        let mut sorted = REQUEST_KINDS;
        sorted.sort_unstable();
        assert_eq!(sorted, REQUEST_KINDS);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0.0, "empty histogram");
        for us in [1u64, 3, 3, 3, 100, 100, 5000] {
            h.record(us);
        }
        assert_eq!(h.count(), 7);
        // p50 falls in the 3µs observations → bucket upper bound 4.
        assert_eq!(h.percentile(50.0), 4.0);
        // p99 is the slowest observation's bucket (5000 < 8192).
        assert_eq!(h.percentile(99.0), 8192.0);
        let j = latency_json(&h);
        assert_eq!(j.field("count").unwrap().as_usize().unwrap(), 7);
        assert_eq!(j.field("p50_us").unwrap().as_f64().unwrap(), 4.0);
        assert_eq!(j.field("p99_us").unwrap().as_f64().unwrap(), 8192.0);
        // The 3µs observations land in `le_4`, zero buckets are omitted.
        assert_eq!(j.field("buckets_us").unwrap().field("le_4").unwrap().as_usize().unwrap(), 3);
        assert!(j.field("buckets_us").unwrap().get("le_8").is_none());
        // Canonical serialization.
        let line = j.to_line();
        assert_eq!(Json::parse(&line).unwrap().to_line(), line);
    }

    #[test]
    fn huge_latencies_land_in_the_overflow_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.percentile(50.0), (1u64 << (LATENCY_BUCKETS - 1)) as f64);
    }

    #[test]
    fn snapshot_counts_requests_and_embeds_server_fields() {
        let m = Metrics::new();
        m.count_request("solve");
        m.count_request("solve");
        m.count_request("stats");
        m.count_request("not_a_kind"); // ignored, not a panic
        m.set_queue_depth(3);
        m.set_queue_depth(1);
        let snap = m.snapshot(vec![("threads", Json::Num(2.0))]);
        assert_eq!(snap.field("requests").unwrap().field("solve").unwrap().as_usize().unwrap(), 2);
        assert_eq!(snap.field("threads").unwrap().as_usize().unwrap(), 2);
        assert_eq!(snap.field("queue").unwrap().field("peak").unwrap().as_usize().unwrap(), 3);
        assert_eq!(snap.field("queue").unwrap().field("depth").unwrap().as_usize().unwrap(), 1);
    }

    #[test]
    fn metrics_requests_count_in_prometheus_but_not_in_stats() {
        let m = Metrics::new();
        m.count_request("metrics");
        let snap = m.snapshot(vec![]);
        // The stats `requests` object keeps its pre-`metrics` shape.
        assert!(snap.field("requests").unwrap().get("metrics").is_none());
        let text = m.render_prometheus();
        assert!(text.contains("sdc_requests_total{kind=\"metrics\"} 1"), "{text}");
    }

    #[test]
    fn replicate_and_loop_series_are_prometheus_only() {
        let m = Metrics::new();
        m.count_request("replicate");
        m.replications.add(2);
        m.loop_wakeups.inc();
        m.frames_oversized.inc();
        m.shard_index.set(1);
        m.shard_count.set(3);
        // `stats` keeps its pinned shape: no new request kind appears.
        let snap = m.snapshot(vec![]);
        assert!(snap.field("requests").unwrap().get("replicate").is_none());
        let text = m.render_prometheus();
        for needle in [
            "sdc_requests_total{kind=\"replicate\"} 1",
            "sdc_replications_total 2",
            "sdc_loop_wakeups_total 1",
            "sdc_frames_oversized_total 1",
            "sdc_shard_index 1",
            "sdc_shard_count 3",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn prometheus_exposition_has_the_required_families() {
        let m = Metrics::new();
        m.count_request("solve");
        m.cache_hits.inc();
        m.set_queue_depth(2);
        m.detector_events.add(3);
        m.solve_latency.record(900);
        let text = m.render_prometheus();
        for family in [
            "# TYPE sdc_requests_total counter",
            "# TYPE sdc_cache_hits_total counter",
            "# TYPE sdc_queue_depth gauge",
            "# TYPE sdc_detector_events_total counter",
            "# TYPE sdc_solve_latency_us histogram",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(text.contains("sdc_requests_total{kind=\"solve\"} 1"));
        assert!(text.contains("sdc_detector_events_total 3"));
        assert!(text.contains("sdc_solve_latency_us_bucket{le=\"1024\"} 1"));
        assert!(text.contains("sdc_solve_latency_us_sum 900"));
        // The machine-readable series snapshot carries the same values.
        let series = m.series();
        assert!(series.contains(&("sdc_detector_events_total".to_string(), 3)));
        assert!(series.contains(&("sdc_solve_latency_us_count".to_string(), 1)));
    }
}

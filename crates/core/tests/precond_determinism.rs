//! Bitwise thread-count determinism of the preconditioner vocabulary.
//!
//! The campaign engine's reproducibility contract extends through the
//! preconditioners: a Jacobi/ILU(0)/Chebyshev apply, and every solver
//! wrapped around one, must produce identical bits at any worker count.
//! (ILU(0) triangular solves are inherently sequential; Jacobi and
//! Chebyshev lean on the deterministic-reduction SpMV/axpy kernels.)

use sdc_gmres::ftgmres::{ftgmres_solve_precond, FtGmresConfig};
use sdc_gmres::gmres::{gmres_solve_right_precond, GmresConfig};
use sdc_gmres::precond::{BuiltPrecond, PrecondKind};
use sdc_sparse::{gallery, CsrMatrix};

fn problem() -> (CsrMatrix, Vec<f64>) {
    let a = gallery::poisson2d(24);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    (a, b)
}

#[test]
fn precond_apply_is_bitwise_thread_independent() {
    let _guard = sdc_parallel::test_serial_guard();
    let (a, _) = problem();
    let n = a.nrows();
    let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.43).sin() + 0.1).collect();
    for kind in [PrecondKind::Jacobi, PrecondKind::Ilu0, PrecondKind::Chebyshev] {
        let pc = BuiltPrecond::build(kind, &a).unwrap();
        sdc_parallel::set_threads(1);
        let mut reference = vec![0.0; n];
        pc.solve(&q, &mut reference);
        for t in [2usize, 4] {
            sdc_parallel::set_threads(t);
            let mut z = vec![f64::NAN; n];
            pc.solve(&q, &mut z);
            for i in 0..n {
                assert_eq!(
                    z[i].to_bits(),
                    reference[i].to_bits(),
                    "{kind} apply row {i} differs at {t} threads"
                );
            }
        }
    }
    sdc_parallel::set_threads(0);
}

#[test]
fn preconditioned_solves_are_bitwise_thread_independent() {
    let _guard = sdc_parallel::test_serial_guard();
    let (a, b) = problem();
    let gmres_cfg = GmresConfig { tol: 1e-8, max_iters: 400, ..Default::default() };
    let ft_cfg = FtGmresConfig {
        outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-7, max_outer: 60, ..Default::default() },
        inner_iters: 10,
        ..Default::default()
    };
    for kind in PrecondKind::all() {
        let pc = BuiltPrecond::build(kind, &a).unwrap();

        sdc_parallel::set_threads(1);
        let (x_ref, rep_ref) = gmres_solve_right_precond(&a, &b, None, &gmres_cfg, &pc);
        let (ft_ref, ft_rep_ref) =
            ftgmres_solve_precond(&a, &b, None, &ft_cfg, &pc, &sdc_faults::NoFaults);
        assert!(rep_ref.outcome.is_converged(), "{kind} gmres baseline must converge");
        assert!(ft_rep_ref.outcome.is_converged(), "{kind} ftgmres baseline must converge");

        sdc_parallel::set_threads(4);
        let (x4, rep4) = gmres_solve_right_precond(&a, &b, None, &gmres_cfg, &pc);
        let (ft4, ft_rep4) =
            ftgmres_solve_precond(&a, &b, None, &ft_cfg, &pc, &sdc_faults::NoFaults);

        assert_eq!(rep_ref.iterations, rep4.iterations, "{kind} gmres iteration count");
        assert_eq!(ft_rep_ref.iterations, ft_rep4.iterations, "{kind} ftgmres outer count");
        assert!(
            x_ref.iter().zip(&x4).all(|(p, q)| p.to_bits() == q.to_bits()),
            "{kind} gmres solution differs between 1 and 4 threads"
        );
        assert!(
            ft_ref.iter().zip(&ft4).all(|(p, q)| p.to_bits() == q.to_bits()),
            "{kind} ftgmres solution differs between 1 and 4 threads"
        );
    }
    sdc_parallel::set_threads(0);
}

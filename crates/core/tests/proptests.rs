//! Property-based tests for the solver core.
//!
//! The central properties under test are the paper's own claims:
//!
//! * Eq. 3 soundness: fault-free Hessenberg entries never exceed `‖A‖_F`
//!   (the detector has zero false positives);
//! * run-through: FT-GMRES converges to the *true* solution under a
//!   single SDC of any of the paper's classes at any site;
//! * detection: class-1 faults are always caught when a detector is on.

use proptest::prelude::*;
use sdc_faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
use sdc_gmres::arnoldi::arnoldi;
use sdc_gmres::prelude::*;
use sdc_sparse::gallery;

fn b_for(a: &sdc_sparse::CsrMatrix) -> Vec<f64> {
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.spmv(&ones, &mut b);
    b
}

fn rel_residual(a: &sdc_sparse::CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    sdc_gmres::operator::residual(a, b, x, &mut r);
    sdc_dense::vector::nrm2(&r) / sdc_dense::vector::nrm2(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hessenberg_bound_never_false_positives(seed in 0u64..500, m in 4usize..9) {
        // Random sparse SPD and nonsymmetric operators: every fault-free
        // Hessenberg entry obeys |h| <= ||A||_F.
        let a = if seed % 2 == 0 {
            gallery::sprand_spd(m * m, 0.08, seed)
        } else {
            gallery::convection_diffusion_2d(m, (seed % 7) as f64 * 0.5, 1.0)
        };
        let n = a.nrows();
        let v0: Vec<f64> = (0..n).map(|i| ((i as f64 + seed as f64) * 0.37).sin() + 0.2).collect();
        let dec = arnoldi(&a, &v0, 12.min(n - 1), OrthoStrategy::Mgs);
        prop_assert!(dec.h.norm_max() <= a.norm_fro() * (1.0 + 1e-12));
    }

    #[test]
    fn ftgmres_runs_through_any_single_fault(
        agg in 1usize..60,
        class_ix in 0usize..3,
        pos_ix in 0usize..2,
    ) {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg = FtGmresConfig {
            outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-8, max_outer: 50, ..Default::default() },
            inner_iters: 10,
            ..Default::default()
        };
        let point = CampaignPoint {
            aggregate_iteration: agg,
            inner_per_outer: cfg.inner_iters,
            class: FaultClass::all()[class_ix],
            position: MgsPosition::both()[pos_ix],
        };
        let inj = point.injector();
        let (x, rep) = sdc_gmres::ftgmres::ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
        // Either it converged to the true answer, or (never observed, but
        // permitted by the trichotomy) failed loudly — silence is the one
        // forbidden outcome.
        if rep.outcome.is_converged() {
            prop_assert!(rel_residual(&a, &b, &x) <= 1e-7,
                "claimed convergence but residual is {}", rel_residual(&a, &b, &x));
        } else {
            prop_assert!(rep.outcome.is_loud_failure() ||
                         matches!(rep.outcome, SolveOutcome::MaxIterations),
                "silent bad outcome: {:?}", rep.outcome);
        }
    }

    #[test]
    fn detector_always_catches_class1(agg in 1usize..40) {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let mut cfg = FtGmresConfig {
            outer: sdc_gmres::fgmres::FgmresConfig { tol: 1e-8, max_outer: 50, ..Default::default() },
            inner_iters: 10,
            ..Default::default()
        };
        cfg.inner_detector = Some(SdcDetector::with_frobenius_bound(
            &a, DetectorResponse::RestartInner));
        let point = CampaignPoint {
            aggregate_iteration: agg,
            inner_per_outer: cfg.inner_iters,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        let inj = point.injector();
        let (_, rep) = sdc_gmres::ftgmres::ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
        // If the fault was actually committed (the run may converge before
        // reaching the target site), it must have been detected.
        if !rep.injections.is_empty() {
            prop_assert!(rep.detected_anything(),
                "committed class-1 fault escaped the detector at agg={agg}");
        }
    }

    #[test]
    fn gmres_residuals_monotone_on_random_spd(seed in 0u64..200) {
        let a = gallery::sprand_spd(60, 0.08, seed);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-9, max_iters: 70, ..Default::default() };
        let (_, rep) = gmres_solve(&a, &b, None, &cfg);
        for w in rep.residual_history.windows(2) {
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-10),
                "residual increased {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn cg_and_gmres_agree_on_random_spd(seed in 0u64..100) {
        let a = gallery::sprand_spd(50, 0.1, seed);
        let b = b_for(&a);
        let (xc, repc) = cg_solve(&a, &b, None, &CgConfig { tol: 1e-11, max_iters: 500 });
        let (xg, repg) = gmres_solve(&a, &b, None,
            &GmresConfig { tol: 1e-11, max_iters: 200, ..Default::default() });
        prop_assert!(repc.outcome.is_converged());
        prop_assert!(repg.outcome.is_converged());
        let diff: f64 = xc.iter().zip(xg.iter()).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max);
        let scale: f64 = xg.iter().map(|v| v.abs()).fold(0.0, f64::max);
        prop_assert!(diff <= 1e-6 * scale.max(1.0), "diff {diff}");
    }
}

//! ILU(0) and SSOR preconditioners.
//!
//! The paper's experiments run the inner GMRES unpreconditioned, but its
//! framing — inner solves as disposable preconditioner applications —
//! invites stronger inner operators. ILU(0) (incomplete LU with zero
//! fill-in, on the existing sparsity pattern) is the standard choice for
//! the circuit-class problems of §VII-A; SSOR needs no factorization at
//! all. Both plug into [`crate::precond::Preconditioner`], so they work
//! as inner-solve preconditioners or directly under FGMRES.

use crate::precond::Preconditioner;
use sdc_sparse::ilu::{Ilu0Error, Ilu0Factor};
use sdc_sparse::CsrMatrix;

/// Error from the ILU(0) factorization.
#[derive(Clone, Debug, PartialEq)]
pub enum IluError {
    /// The matrix is not square.
    NotSquare,
    /// A zero (or non-finite) pivot appeared at the given row; the
    /// factorization cannot proceed on this pattern.
    BadPivot {
        /// Row index of the offending pivot.
        row: usize,
    },
}

impl From<Ilu0Error> for IluError {
    fn from(e: Ilu0Error) -> Self {
        match e {
            Ilu0Error::NotSquare => IluError::NotSquare,
            Ilu0Error::BadPivot { row } => IluError::BadPivot { row },
        }
    }
}

impl std::fmt::Display for IluError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IluError::NotSquare => write!(f, "ILU(0): matrix must be square"),
            IluError::BadPivot { row } => write!(f, "ILU(0): zero/non-finite pivot in row {row}"),
        }
    }
}

impl std::error::Error for IluError {}

/// The ILU(0) preconditioner: a [`Preconditioner`] wrapper around the
/// sparse substrate's [`Ilu0Factor`] (the factorization math and the
/// stored-factor fault surface live in `sdc_sparse::ilu`).
#[derive(Clone, Debug)]
pub struct Ilu0 {
    factor: Ilu0Factor,
}

impl Ilu0 {
    /// Computes ILU(0) of `a`.
    pub fn factor(a: &CsrMatrix) -> Result<Self, IluError> {
        Ok(Self { factor: Ilu0Factor::factor(a)? })
    }

    /// Wraps an existing factorization (e.g. one with fault-corrupted
    /// stored factors).
    pub fn from_factor(factor: Ilu0Factor) -> Self {
        Self { factor }
    }

    /// Applies `z = U⁻¹ L⁻¹ q` (the preconditioner solve).
    pub fn solve(&self, q: &[f64], z: &mut [f64]) {
        self.factor.solve(q, z)
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.factor.order()
    }

    /// The underlying stored factorization.
    pub fn factor_data(&self) -> &Ilu0Factor {
        &self.factor
    }

    /// Mutable access to the stored factorization — the
    /// opaque-preconditioner fault surface.
    pub fn factor_data_mut(&mut self) -> &mut Ilu0Factor {
        &mut self.factor
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        Ilu0::solve(self, q, z)
    }
    fn name(&self) -> &'static str {
        "ilu0"
    }
}

/// Symmetric successive over-relaxation preconditioner
/// `M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + Lᵀ or U)` applied via two
/// triangular sweeps. No factorization required; `ω ∈ (0, 2)`.
#[derive(Clone, Debug)]
pub struct Ssor {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    omega: f64,
}

impl Ssor {
    /// Builds an SSOR preconditioner with relaxation factor `omega`.
    ///
    /// # Panics
    /// Panics if `omega` is outside `(0, 2)` or the matrix is not square.
    pub fn new(a: &CsrMatrix, omega: f64) -> Self {
        assert!(omega > 0.0 && omega < 2.0, "SSOR: omega must be in (0,2)");
        assert_eq!(a.nrows(), a.ncols(), "SSOR: matrix must be square");
        let inv_diag = a
            .diagonal()
            .iter()
            .map(|&d| if d != 0.0 && d.is_finite() { 1.0 / d } else { 1.0 })
            .collect();
        Self { a: a.clone(), inv_diag, omega }
    }
}

impl Preconditioner for Ssor {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        let n = self.a.nrows();
        assert_eq!(q.len(), n);
        assert_eq!(z.len(), n);
        let w = self.omega;
        // Forward sweep: (D/ω + L) y = q.
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let mut s = q[i];
            for (c, v) in cols.iter().zip(vals.iter()) {
                if *c < i {
                    s -= v * z[*c];
                }
            }
            z[i] = s * self.inv_diag[i] * w;
        }
        // Backward sweep: (D/ω + U) z = (D/ω) y, with y currently in z.
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let mut s = z[i] / (self.inv_diag[i] * w);
            for (c, v) in cols.iter().zip(vals.iter()) {
                if *c > i {
                    s -= v * z[*c];
                }
            }
            z[i] = s * self.inv_diag[i] * w;
        }
    }
    fn name(&self) -> &'static str {
        "ssor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres::{gmres_solve, GmresConfig};
    use sdc_dense::vector;
    use sdc_sparse::gallery;

    fn b_for(a: &CsrMatrix) -> Vec<f64> {
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        b
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // A tridiagonal matrix suffers no fill-in: ILU(0) = full LU, so
        // the preconditioner solve is a direct solve.
        let a = gallery::poisson1d(50);
        let f = Ilu0::factor(&a).unwrap();
        let b = b_for(&a);
        let mut x = vec![0.0; 50];
        f.solve(&b, &mut x);
        for (i, &v) in x.iter().enumerate() {
            assert!((v - 1.0).abs() < 1e-10, "x[{i}] = {v}");
        }
    }

    #[test]
    fn ilu0_residual_small_on_poisson2d() {
        // On the 5-point stencil ILU(0) is approximate; M⁻¹A should be
        // much better conditioned than A. Test: the preconditioned
        // residual of the exact solution is far below the plain one.
        let a = gallery::poisson2d(12);
        let f = Ilu0::factor(&a).unwrap();
        let b = b_for(&a);
        // One application of M⁻¹ must substantially reduce the residual
        // relative to the zero guess.
        let mut z = vec![0.0; a.nrows()];
        f.solve(&b, &mut z);
        let mut r = vec![0.0; a.nrows()];
        crate::operator::residual(&a, &b, &z, &mut r);
        let rel = vector::nrm2(&r) / vector::nrm2(&b);
        assert!(rel < 0.5, "ILU(0) preconditioner too weak: rel residual {rel}");
    }

    #[test]
    fn ilu0_accelerates_gmres() {
        use crate::operator::FnOperator;
        let a = gallery::convection_diffusion_2d(16, 3.0, 1.0);
        let n = a.nrows();
        let b = b_for(&a);
        let plain_cfg = GmresConfig { tol: 1e-9, max_iters: 300, ..Default::default() };
        let (_, plain) = gmres_solve(&a, &b, None, &plain_cfg);

        // Right-preconditioned operator A·M⁻¹ solved for u, x = M⁻¹u.
        let f = Ilu0::factor(&a).unwrap();
        let op = FnOperator::square(n, |u, y| {
            let mut z = vec![0.0; u.len()];
            f.solve(u, &mut z);
            a.spmv(&z, y);
        });
        let (u, pre) = gmres_solve(&op, &b, None, &plain_cfg);
        let mut x = vec![0.0; n];
        f.solve(&u, &mut x);
        assert!(pre.outcome.is_converged());
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "preconditioned solution error {err}");
        assert!(
            pre.iterations * 2 < plain.iterations,
            "ILU(0) must at least halve the iterations: {} vs {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn ilu0_rejects_missing_diagonal() {
        let mut coo = sdc_sparse::CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        assert_eq!(Ilu0::factor(&a).unwrap_err(), IluError::BadPivot { row: 0 });
    }

    #[test]
    fn ilu0_rejects_rectangular() {
        let mut coo = sdc_sparse::CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert_eq!(Ilu0::factor(&a).unwrap_err(), IluError::NotSquare);
    }

    #[test]
    fn ssor_reduces_error_as_preconditioner() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let mut p = Ssor::new(&a, 1.2);
        let mut z = vec![0.0; a.nrows()];
        p.apply(&b, &mut z);
        // One SSOR application is a rough solve: error well below the
        // trivial z=0 guess.
        let err0 = vector::nrm2(&vec![1.0; a.nrows()]);
        let err: f64 = {
            let d: Vec<f64> = z.iter().map(|v| v - 1.0).collect();
            vector::nrm2(&d)
        };
        assert!(err < 0.9 * err0, "SSOR made no progress: {err} vs {err0}");
    }

    #[test]
    fn ssor_in_fgmres() {
        use crate::fgmres::{fgmres_solve, FgmresConfig, FixedPrecond};
        let a = gallery::poisson2d(12);
        let b = b_for(&a);
        let cfg = FgmresConfig { tol: 1e-9, max_outer: 300, ..Default::default() };
        let mut p = FixedPrecond(Ssor::new(&a, 1.5));
        let (x, rep) = fgmres_solve(&a, &b, None, &cfg, &mut p);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6);
        // It should beat identity preconditioning.
        let mut ident = FixedPrecond(crate::precond::IdentityPrecond);
        let (_, plain) = fgmres_solve(&a, &b, None, &cfg, &mut ident);
        assert!(rep.iterations < plain.iterations, "{} vs {}", rep.iterations, plain.iterations);
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn ssor_rejects_bad_omega() {
        let a = gallery::poisson1d(4);
        Ssor::new(&a, 2.5);
    }
}

//! Instrumented orthogonalization kernels.
//!
//! The Arnoldi process makes the new direction `v = A q_j` orthogonal to
//! the current basis. The paper uses Modified Gram-Schmidt and notes the
//! detector bound is invariant to the choice; Classical Gram-Schmidt and
//! CGS2 (CGS with one reorthogonalization pass) are provided for the
//! ablation benches.
//!
//! **Instrumentation**: every projection coefficient passes through the
//! fault injector *before* it is used to update `v` — this is what lets a
//! single corrupted `h_{1,j}` "taint all subsequent iterations of the
//! orthogonalization loop" under MGS (§VII-B), exactly as the paper's
//! experiments require. The detector checks each coefficient (and the
//! final norm) as it is produced.

use crate::detector::{SdcDetector, Violation};
use sdc_dense::vector;
use sdc_faults::{FaultInjector, Kernel, Site};

/// Which Gram-Schmidt variant the Arnoldi process uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrthoStrategy {
    /// Modified Gram-Schmidt — the paper's choice.
    #[default]
    Mgs,
    /// Classical Gram-Schmidt (one pass; all dots against the original
    /// vector).
    Cgs,
    /// Classical Gram-Schmidt with a second pass ("twice is enough").
    Cgs2,
}

/// Iteration coordinates stamped on every injection/detection site.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrthoSiteCtx {
    /// Outer (flexible) iteration, 0 if not nested.
    pub outer_iteration: usize,
    /// Inner-solve ordinal, 0 if not nested.
    pub inner_solve: usize,
    /// Current Arnoldi column `j` (1-based).
    pub column: usize,
}

impl OrthoSiteCtx {
    fn dot_site(&self, i: usize) -> Site {
        Site {
            kernel: Kernel::OrthoDot,
            outer_iteration: self.outer_iteration,
            inner_solve: self.inner_solve,
            inner_iteration: self.column,
            loop_index: i,
        }
    }

    fn norm_site(&self) -> Site {
        Site {
            kernel: Kernel::OrthoNorm,
            outer_iteration: self.outer_iteration,
            inner_solve: self.inner_solve,
            inner_iteration: self.column,
            loop_index: self.column + 1,
        }
    }
}

/// Result of orthogonalizing one vector against the basis.
#[derive(Clone, Debug)]
pub struct OrthoResult {
    /// Projection coefficients `h_{1..j, j}` (length = basis size).
    pub h: Vec<f64>,
    /// The subdiagonal entry `h_{j+1,j} = ‖v‖₂` after orthogonalization.
    pub vnorm: f64,
    /// Detector violations, in the order they occurred.
    pub violations: Vec<Violation>,
}

/// Orthogonalizes `v` in place against `basis` (unit-length vectors),
/// passing every produced coefficient through `injector` and checking it
/// with `detector` (if any).
///
/// The returned `h` holds the *(possibly corrupted)* coefficients that
/// were actually applied — they are what the solver must store in `H`
/// for the arithmetic to mirror Algorithm 1 under fault injection.
pub fn orthogonalize(
    strategy: OrthoStrategy,
    basis: &[Vec<f64>],
    v: &mut [f64],
    ctx: OrthoSiteCtx,
    injector: &dyn FaultInjector,
    detector: Option<&SdcDetector>,
) -> OrthoResult {
    match strategy {
        OrthoStrategy::Mgs => mgs(basis, v, ctx, injector, detector),
        OrthoStrategy::Cgs => cgs(basis, v, ctx, injector, detector, false),
        OrthoStrategy::Cgs2 => cgs(basis, v, ctx, injector, detector, true),
    }
}

fn check(detector: Option<&SdcDetector>, value: f64, site: Site, violations: &mut Vec<Violation>) {
    if let Some(d) = detector {
        if let Some(v) = d.check(value, site) {
            violations.push(v);
        }
    }
}

fn mgs(
    basis: &[Vec<f64>],
    v: &mut [f64],
    ctx: OrthoSiteCtx,
    injector: &dyn FaultInjector,
    detector: Option<&SdcDetector>,
) -> OrthoResult {
    let mut h = Vec::with_capacity(basis.len());
    let mut violations = Vec::new();
    for (idx, q) in basis.iter().enumerate() {
        // Paper notation: i = idx+1 (1-based row of h_ij).
        let site = ctx.dot_site(idx + 1);
        let hij = injector.corrupt(site, vector::par_dot(q, v));
        check(detector, hij, site, &mut violations);
        // The corrupted coefficient is applied: under MGS the fault
        // propagates into v and taints every later step.
        vector::par_axpy(-hij, q, v);
        h.push(hij);
    }
    let nsite = ctx.norm_site();
    let vnorm = injector.corrupt(nsite, vector::nrm2(v));
    check(detector, vnorm, nsite, &mut violations);
    OrthoResult { h, vnorm, violations }
}

fn cgs(
    basis: &[Vec<f64>],
    v: &mut [f64],
    ctx: OrthoSiteCtx,
    injector: &dyn FaultInjector,
    detector: Option<&SdcDetector>,
    reorthogonalize: bool,
) -> OrthoResult {
    let mut violations = Vec::new();
    // First pass: coefficients against the *original* v.
    let mut h: Vec<f64> = Vec::with_capacity(basis.len());
    for (idx, q) in basis.iter().enumerate() {
        let site = ctx.dot_site(idx + 1);
        let hij = injector.corrupt(site, vector::par_dot(q, v));
        check(detector, hij, site, &mut violations);
        h.push(hij);
    }
    for (idx, q) in basis.iter().enumerate() {
        vector::par_axpy(-h[idx], q, v);
    }
    if reorthogonalize {
        // Second pass; corrections folded into h.
        for (idx, q) in basis.iter().enumerate() {
            let site = ctx.dot_site(idx + 1);
            let c = injector.corrupt(site, vector::par_dot(q, v));
            check(detector, c, site, &mut violations);
            vector::par_axpy(-c, q, v);
            h[idx] += c;
        }
    }
    let nsite = ctx.norm_site();
    let vnorm = injector.corrupt(nsite, vector::nrm2(v));
    check(detector, vnorm, nsite, &mut violations);
    OrthoResult { h, vnorm, violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorResponse;
    use sdc_faults::trigger::LoopPosition;
    use sdc_faults::{FaultModel, NoFaults, SingleFaultInjector, SitePredicate, Trigger};

    fn unit(v: Vec<f64>) -> Vec<f64> {
        let mut v = v;
        vector::normalize(&mut v);
        v
    }

    fn ctx(col: usize) -> OrthoSiteCtx {
        OrthoSiteCtx { outer_iteration: 1, inner_solve: 1, column: col }
    }

    fn check_orthogonal(basis: &[Vec<f64>], v: &[f64], tol: f64) {
        for (k, q) in basis.iter().enumerate() {
            let d = vector::dot(q, v);
            assert!(d.abs() < tol, "v not orthogonal to basis[{k}]: {d}");
        }
    }

    #[test]
    fn mgs_orthogonalizes() {
        let basis = [unit(vec![1.0, 1.0, 0.0, 0.0]), unit(vec![-1.0, 1.0, 1.0, 0.0])];
        // Gram-Schmidt the second basis vector first for a true orthobasis.
        let mut q2 = basis[1].clone();
        let r = mgs(&basis[..1], &mut q2, ctx(1), &NoFaults, None);
        let q2 = unit(q2);
        assert!(r.violations.is_empty());
        let basis = vec![basis[0].clone(), q2];

        let mut v = vec![0.3, -0.2, 0.9, 1.0];
        let res = orthogonalize(OrthoStrategy::Mgs, &basis, &mut v, ctx(2), &NoFaults, None);
        assert_eq!(res.h.len(), 2);
        check_orthogonal(&basis, &v, 1e-14);
        assert!((vector::nrm2(&v) - res.vnorm).abs() < 1e-14);
    }

    #[test]
    fn all_strategies_agree_fault_free() {
        // Build an orthonormal basis of 3 vectors in R^6.
        let mut basis: Vec<Vec<f64>> = Vec::new();
        for k in 0..3 {
            let mut v: Vec<f64> =
                (0..6).map(|i| ((i * (k + 2)) as f64 * 0.53).sin() + 0.1).collect();
            let r = mgs(&basis, &mut v, ctx(k + 1), &NoFaults, None);
            assert!(r.vnorm > 0.0);
            vector::scal(1.0 / r.vnorm, &mut v);
            basis.push(v);
        }
        let v0: Vec<f64> = (0..6).map(|i| (i as f64 * 0.91).cos()).collect();
        let mut results = Vec::new();
        for strat in [OrthoStrategy::Mgs, OrthoStrategy::Cgs, OrthoStrategy::Cgs2] {
            let mut v = v0.clone();
            let r = orthogonalize(strat, &basis, &mut v, ctx(4), &NoFaults, None);
            check_orthogonal(&basis, &v, 1e-12);
            results.push(r);
        }
        for k in 0..3 {
            assert!((results[0].h[k] - results[1].h[k]).abs() < 1e-12);
            assert!((results[0].h[k] - results[2].h[k]).abs() < 1e-12);
        }
        assert!((results[0].vnorm - results[1].vnorm).abs() < 1e-12);
    }

    #[test]
    fn injected_fault_taints_mgs_result() {
        let basis = vec![unit(vec![1.0, 0.0, 0.0]), unit(vec![0.0, 1.0, 0.0])];
        let mut v = vec![0.5, 0.5, 1.0];
        let inj = SingleFaultInjector::new(
            FaultModel::ScaleRelative(100.0),
            Trigger::once(SitePredicate::mgs_site(1, 2, LoopPosition::First)),
        );
        let res = orthogonalize(OrthoStrategy::Mgs, &basis, &mut v, ctx(2), &inj, None);
        // h_{1,2} corrupted: 0.5*100.
        assert_eq!(res.h[0], 50.0);
        // The corrupted coefficient was applied: v[0] = 0.5 - 50 = -49.5.
        assert_eq!(v[0], -49.5);
        // Result is no longer orthogonal to q1 — the taint is real.
        assert!(vector::dot(&basis[0], &v).abs() > 1.0);
    }

    #[test]
    fn detector_flags_corrupted_coefficient() {
        let basis = vec![unit(vec![1.0, 0.0])];
        let mut v = vec![0.7, 0.7];
        let inj = SingleFaultInjector::new(
            FaultModel::CLASS1_HUGE,
            Trigger::once(SitePredicate::mgs_site(1, 1, LoopPosition::First)),
        );
        let det = SdcDetector { bound: 10.0, response: DetectorResponse::Record };
        let res = orthogonalize(OrthoStrategy::Mgs, &basis, &mut v, ctx(1), &inj, Some(&det));
        assert_eq!(res.violations.len(), 2, "dot violation, then the norm blows past the bound");
        assert_eq!(res.violations[0].value, 0.7 * 1e150);
    }

    #[test]
    fn detector_silent_on_fault_free_run() {
        let basis = vec![unit(vec![1.0, 2.0, 0.0]), unit(vec![0.0, 0.0, 1.0])];
        // bound = a generous overestimate of ‖v‖.
        let det = SdcDetector { bound: 1e3, response: DetectorResponse::Record };
        let mut v = vec![0.1, -0.4, 0.8];
        let res = orthogonalize(OrthoStrategy::Mgs, &basis, &mut v, ctx(2), &NoFaults, Some(&det));
        assert!(res.violations.is_empty());
    }

    #[test]
    fn empty_basis_returns_norm_only() {
        let mut v = vec![3.0, 4.0];
        let res = orthogonalize(OrthoStrategy::Mgs, &[], &mut v, ctx(1), &NoFaults, None);
        assert!(res.h.is_empty());
        assert!((res.vnorm - 5.0).abs() < 1e-15);
    }

    #[test]
    fn cgs_fault_does_not_taint_other_coefficients() {
        // Contrast with MGS: under CGS all dots use the original v, so a
        // corrupted h_{1,j} leaves h_{2,j} at its correct value.
        let basis = vec![unit(vec![1.0, 0.0, 0.0]), unit(vec![0.0, 1.0, 0.0])];
        let v0 = vec![0.5, 0.25, 1.0];
        let inj = SingleFaultInjector::new(
            FaultModel::ScaleRelative(100.0),
            Trigger::once(SitePredicate::mgs_site(1, 2, LoopPosition::First)),
        );
        let mut v = v0.clone();
        let res = orthogonalize(OrthoStrategy::Cgs, &basis, &mut v, ctx(2), &inj, None);
        assert_eq!(res.h[0], 50.0);
        assert_eq!(res.h[1], 0.25, "CGS coefficient 2 must be untainted");
    }
}

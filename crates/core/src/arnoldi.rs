//! The plain Arnoldi process, exposed for analysis.
//!
//! GMRES embeds Arnoldi (Algorithm 1, lines 3–14); the solvers run it
//! inline for efficiency. This module exposes the process standalone so
//! experiments can inspect the upper Hessenberg matrix itself — Fig. 2 of
//! the paper turns on exactly this: for a symmetric operator `H` is
//! tridiagonal (entries `h_ij ≈ 0` for `i < j−1`), so an SDC striking one
//! of those "structural zeros" is especially damaging, while for a
//! nonsymmetric operator every entry may be legitimately nonzero.

use crate::operator::LinearOperator;
use crate::ortho::{orthogonalize, OrthoSiteCtx, OrthoStrategy};
use sdc_dense::matrix::DenseMatrix;
use sdc_dense::vector;
use sdc_faults::NoFaults;

/// Result of `m` steps of Arnoldi.
#[derive(Clone, Debug)]
pub struct ArnoldiDecomposition {
    /// Orthonormal basis `Q = [q₁ … q_k]` (k ≤ m+1 columns of length n).
    pub q: Vec<Vec<f64>>,
    /// The `(k+1) × k` upper Hessenberg matrix (dense, zeros below the
    /// subdiagonal), where `k ≤ m` is the number of completed steps.
    pub h: DenseMatrix,
    /// True if the process stopped early on an invariant subspace.
    pub breakdown: bool,
}

/// Runs `m` Arnoldi steps from start vector `v0` (need not be
/// normalized).
pub fn arnoldi<A: LinearOperator + ?Sized>(
    a: &A,
    v0: &[f64],
    m: usize,
    strategy: OrthoStrategy,
) -> ArnoldiDecomposition {
    let n = a.nrows();
    assert!(a.is_square(), "arnoldi: operator must be square");
    assert_eq!(v0.len(), n, "arnoldi: v0 length");
    let mut q1 = v0.to_vec();
    let beta = vector::normalize(&mut q1);
    assert!(beta > 0.0, "arnoldi: zero start vector");

    let mut q: Vec<Vec<f64>> = vec![q1];
    let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut w = vec![0.0; n];
    let mut breakdown = false;

    for j in 1..=m {
        a.apply(&q[j - 1], &mut w);
        let mut v = w.clone();
        let ores = orthogonalize(
            strategy,
            &q,
            &mut v,
            OrthoSiteCtx { outer_iteration: 0, inner_solve: 0, column: j },
            &NoFaults,
            None,
        );
        let mut col = ores.h;
        col.push(ores.vnorm);
        h_cols.push(col);
        if ores.vnorm <= 1e-12 * beta.max(1.0) {
            breakdown = true;
            break;
        }
        vector::scal(1.0 / ores.vnorm, &mut v);
        q.push(v);
    }

    let k = h_cols.len();
    let mut h = DenseMatrix::zeros(k + 1, k);
    for (c, col) in h_cols.iter().enumerate() {
        for (r, &val) in col.iter().enumerate() {
            h[(r, c)] = val;
        }
    }
    ArnoldiDecomposition { q, h, breakdown }
}

/// Arnoldi with Householder reflections (Walker's method) — the third
/// orthogonalization the paper names. Costlier than Gram-Schmidt but
/// unconditionally orthogonal to machine precision; the Eq.-3 bound
/// `|h_ij| ≤ ‖A‖_F` is invariant to this choice, which
/// [`householder_matches_mgs_bound`](#)'s tests verify.
pub fn householder_arnoldi<A: LinearOperator + ?Sized>(
    a: &A,
    v0: &[f64],
    m: usize,
) -> ArnoldiDecomposition {
    let n = a.nrows();
    assert!(a.is_square(), "householder_arnoldi: operator must be square");
    assert_eq!(v0.len(), n, "householder_arnoldi: v0 length");
    let m = m.min(n.saturating_sub(1));

    // Reflectors u_k with support in [k, n): P_k = I − 2 u_k u_kᵀ.
    let mut reflectors: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut breakdown = false;

    // Generates the reflector zeroing w[k+1..] and applies it.
    fn housegen(w: &mut [f64], k: usize) -> Vec<f64> {
        let n = w.len();
        let sigma = vector::nrm2(&w[k..]);
        let mut u = vec![0.0; n];
        if sigma == 0.0 {
            return u; // identity reflector
        }
        let beta = if w[k] >= 0.0 { -sigma } else { sigma };
        u[k..].copy_from_slice(&w[k..]);
        u[k] -= beta;
        let unorm = vector::nrm2(&u[k..]);
        if unorm == 0.0 {
            return vec![0.0; n];
        }
        vector::scal(1.0 / unorm, &mut u[k..]);
        // Apply to w: becomes (0.., beta, 0..).
        w[k] = beta;
        for wi in w[k + 1..].iter_mut() {
            *wi = 0.0;
        }
        u
    }

    #[inline]
    fn apply_reflector(u: &[f64], x: &mut [f64], k: usize) {
        // x ← x − 2 u (uᵀ x); u supported on [k, n).
        let d = 2.0 * vector::dot(&u[k..], &x[k..]);
        if d != 0.0 {
            vector::axpy(-d, &u[k..], &mut x[k..]);
        }
    }

    // Step 0: reduce v0.
    let mut w = v0.to_vec();
    let u0 = housegen(&mut w, 0);
    let beta = w[0];
    assert!(beta != 0.0, "householder_arnoldi: zero start vector");
    reflectors.push(u0);

    // q_0 = P_0 e_0.
    let basis_vec = |reflectors: &[Vec<f64>], j: usize, n: usize| -> Vec<f64> {
        let mut q = vec![0.0; n];
        q[j] = 1.0;
        for (k, u) in reflectors.iter().enumerate().take(j + 1).rev() {
            apply_reflector(u, &mut q, k);
        }
        q
    };
    let mut q: Vec<Vec<f64>> = vec![basis_vec(&reflectors, 0, n)];

    let mut v = vec![0.0; n];
    for j in 0..m {
        a.apply(&q[j], &mut v);
        let mut w = v.clone();
        for (k, u) in reflectors.iter().enumerate() {
            apply_reflector(u, &mut w, k);
        }
        let u_next = housegen(&mut w, j + 1);
        reflectors.push(u_next);
        // Hessenberg column j: components 0..=j+1 of the reduced vector.
        h_cols.push(w[..=j + 1].to_vec());
        let subdiag = w[j + 1];
        if subdiag.abs() <= 1e-12 * beta.abs().max(1.0) {
            breakdown = true;
            break;
        }
        q.push(basis_vec(&reflectors, j + 1, n));
    }

    let k = h_cols.len();
    let mut h = DenseMatrix::zeros(k + 1, k);
    for (c, col) in h_cols.iter().enumerate() {
        for (r, &val) in col.iter().enumerate() {
            h[(r, c)] = val;
        }
    }
    ArnoldiDecomposition { q, h, breakdown }
}

/// Measures how far `H` is from tridiagonal: the largest `|h_ij|` with
/// `i < j−1` (1-based), normalized by `‖H‖_max`. Zero for a perfectly
/// tridiagonal H (symmetric operator), order-one for a nonsymmetric one.
pub fn tridiagonality_defect(h: &DenseMatrix) -> f64 {
    let scale = h.norm_max();
    if scale == 0.0 {
        return 0.0;
    }
    let mut worst = 0.0f64;
    for c in 0..h.cols() {
        for r in 0..c.saturating_sub(1) {
            worst = worst.max(h[(r, c)].abs());
        }
    }
    worst / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_sparse::gallery;

    fn start(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.317).sin() + 0.73).collect()
    }

    #[test]
    fn basis_is_orthonormal() {
        let a = gallery::convection_diffusion_2d(8, 1.5, 0.5);
        let dec = arnoldi(&a, &start(64), 15, OrthoStrategy::Mgs);
        for i in 0..dec.q.len() {
            for j in 0..=i {
                let d = vector::dot(&dec.q[i], &dec.q[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10, "Q[{i}]·Q[{j}] = {d}");
            }
        }
    }

    #[test]
    fn arnoldi_relation_holds() {
        // A Q_k = Q_{k+1} H — the defining relation.
        let a = gallery::poisson2d(7);
        let m = 10;
        let dec = arnoldi(&a, &start(49), m, OrthoStrategy::Mgs);
        let k = dec.h.cols();
        for j in 0..k {
            let mut aqj = vec![0.0; 49];
            a.spmv(&dec.q[j], &mut aqj);
            // Compare to sum_i H[i,j] q_i.
            let mut rec = vec![0.0; 49];
            for i in 0..=j + 1 {
                vector::axpy(dec.h[(i, j)], &dec.q[i], &mut rec);
            }
            let err: f64 =
                aqj.iter().zip(rec.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max);
            assert!(err < 1e-10, "column {j}: relation violated by {err}");
        }
    }

    #[test]
    fn spd_operator_gives_tridiagonal_h() {
        // Fig. 2's left panel: symmetric input ⇒ H tridiagonal.
        let a = gallery::poisson2d(10);
        let dec = arnoldi(&a, &start(100), 20, OrthoStrategy::Mgs);
        assert!(
            tridiagonality_defect(&dec.h) < 1e-10,
            "defect = {}",
            tridiagonality_defect(&dec.h)
        );
    }

    #[test]
    fn nonsymmetric_operator_fills_upper_triangle() {
        // Fig. 2's right panel.
        let a = gallery::grcar(80, 3);
        let dec = arnoldi(&a, &start(80), 15, OrthoStrategy::Mgs);
        assert!(
            tridiagonality_defect(&dec.h) > 1e-3,
            "defect = {} — expected clearly nonzero",
            tridiagonality_defect(&dec.h)
        );
    }

    #[test]
    fn hessenberg_entries_respect_eq3_bound() {
        // |h_ij| ≤ ‖A‖_F always (the detector's soundness).
        let a = gallery::convection_diffusion_2d(6, 2.0, -1.0);
        let bound = a.norm_fro();
        let dec = arnoldi(&a, &start(36), 12, OrthoStrategy::Mgs);
        assert!(dec.h.norm_max() <= bound * (1.0 + 1e-12));
    }

    #[test]
    fn householder_basis_is_orthonormal_to_machine_precision() {
        let a = gallery::convection_diffusion_2d(8, 2.0, -1.0);
        let dec = householder_arnoldi(&a, &start(64), 20);
        for i in 0..dec.q.len() {
            for j in 0..=i {
                let d = vector::dot(&dec.q[i], &dec.q[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-13, "Q[{i}]·Q[{j}] = {d}");
            }
        }
    }

    #[test]
    fn householder_satisfies_arnoldi_relation() {
        let a = gallery::poisson2d(7);
        let dec = householder_arnoldi(&a, &start(49), 10);
        let k = dec.h.cols();
        for j in 0..k {
            let mut aqj = vec![0.0; 49];
            a.spmv(&dec.q[j], &mut aqj);
            let mut rec = vec![0.0; 49];
            for i in 0..=(j + 1).min(dec.q.len() - 1) {
                vector::axpy(dec.h[(i, j)], &dec.q[i], &mut rec);
            }
            let err: f64 =
                aqj.iter().zip(rec.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max);
            assert!(err < 1e-10, "column {j}: relation violated by {err}");
        }
    }

    #[test]
    fn householder_h_matches_mgs_h_up_to_signs() {
        // The Hessenberg matrices from MGS and Householder Arnoldi are
        // related by a diagonal ±1 similarity; entrywise magnitudes agree.
        let a = gallery::convection_diffusion_2d(6, 1.0, 2.0);
        let v0 = start(36);
        let mgs = arnoldi(&a, &v0, 8, OrthoStrategy::Mgs);
        let hh = householder_arnoldi(&a, &v0, 8);
        let k = mgs.h.cols().min(hh.h.cols());
        for c in 0..k {
            for r in 0..=c + 1 {
                let x = mgs.h[(r, c)].abs();
                let y = hh.h[(r, c)].abs();
                assert!(
                    (x - y).abs() < 1e-9 * x.max(y).max(1.0),
                    "|H[{r},{c}]| differs: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn householder_respects_eq3_bound() {
        // The paper's claim: the bound is invariant to the
        // orthogonalization algorithm.
        let a = gallery::grcar(100, 4);
        let dec = householder_arnoldi(&a, &start(100), 20);
        assert!(dec.h.norm_max() <= a.norm_fro() * (1.0 + 1e-12));
    }

    #[test]
    fn householder_breakdown_on_identity() {
        let a = sdc_sparse::CsrMatrix::identity(6);
        let dec = householder_arnoldi(&a, &start(6), 5);
        assert!(dec.breakdown);
        assert_eq!(dec.h.cols(), 1);
    }

    #[test]
    fn breakdown_on_invariant_start() {
        // Start vector = eigenvector of the identity → immediate breakdown.
        let a = sdc_sparse::CsrMatrix::identity(6);
        let dec = arnoldi(&a, &start(6), 6, OrthoStrategy::Mgs);
        assert!(dec.breakdown);
        assert_eq!(dec.h.cols(), 1);
    }
}

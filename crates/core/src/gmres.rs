//! GMRES — Algorithm 1 of the paper, instrumented for fault injection.
//!
//! Restarted GMRES with:
//!
//! * pluggable orthogonalization ([`OrthoStrategy`]), each coefficient
//!   passing through the fault injector and the SDC detector;
//! * the incremental Givens-QR least-squares solve with its free residual
//!   recurrence;
//! * the three §VI-D projected least-squares policies;
//! * detector response handling: record, restart (the paper's cheap
//!   response — discard the tainted Krylov space and redo the solve),
//!   abort (return the current iterate to a reliable caller), halt.
//!
//! In FT-GMRES this solver runs as the *unreliable inner* phase with a
//! fixed iteration count (`tol = 0`); standalone it is a conventional
//! restarted GMRES.

use crate::detector::{DetectorResponse, SdcDetector};
use crate::operator::{residual, FnOperator, LinearOperator};
use crate::ortho::{orthogonalize, OrthoSiteCtx, OrthoStrategy};
use crate::telemetry::{SolveOutcome, SolveReport};
use sdc_dense::hessenberg_qr::HessenbergQr;
use sdc_dense::lstsq::{solve_projected, LstsqPolicy};
use sdc_dense::vector;
use sdc_faults::{FaultInjector, NoFaults};

/// One Arnoldi step. Deterministic channel: every field is a pure
/// function of the operator, rhs and fault spec. Emitted from the
/// orchestrating thread (never from pool workers), so a thread-local
/// trace sink sees the full iteration history in program order.
static EV_ITER: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "gmres.iter", channel: sdc_obs::Channel::Det };
/// A Hessenberg-bound violation flagged by the §V detector, plus the
/// response the solver took.
static EV_DETECT: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "gmres.detect", channel: sdc_obs::Channel::Det };
/// End of one (possibly restarted) GMRES solve.
static EV_DONE: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "gmres.done", channel: sdc_obs::Channel::Det };

/// Nesting coordinates stamped on injection sites (zeros when GMRES runs
/// standalone).
#[derive(Clone, Copy, Debug, Default)]
pub struct SiteContext {
    /// Outer (flexible) iteration this solve serves, 1-based.
    pub outer_iteration: usize,
    /// Ordinal of this inner solve, 1-based.
    pub inner_solve: usize,
}

/// GMRES configuration.
#[derive(Clone, Copy, Debug)]
pub struct GmresConfig {
    /// Relative residual target `‖r‖ ≤ tol·‖b‖`. `0.0` disables the
    /// convergence test: the solver runs a fixed number of iterations —
    /// the paper's inner-solve mode.
    pub tol: f64,
    /// Total iteration budget (across restart cycles).
    pub max_iters: usize,
    /// Krylov dimension per cycle; `None` = no restarting (full GMRES up
    /// to `max_iters`).
    pub restart: Option<usize>,
    /// Orthogonalization variant.
    pub ortho: OrthoStrategy,
    /// Projected least-squares policy (§VI-D).
    pub lsq_policy: LstsqPolicy,
    /// The SDC detector; `None` runs undetected (the paper's baseline).
    pub detector: Option<SdcDetector>,
    /// Happy-breakdown threshold on `h_{j+1,j}`, relative to the cycle's
    /// initial residual norm.
    pub breakdown_rel: f64,
    /// Cap on detector-forced restarts (guards against non-transient
    /// injectors).
    pub max_detector_restarts: usize,
}

impl Default for GmresConfig {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_iters: 200,
            restart: None,
            ortho: OrthoStrategy::Mgs,
            lsq_policy: LstsqPolicy::Standard,
            detector: None,
            breakdown_rel: 1e-13,
            max_detector_restarts: 4,
        }
    }
}

/// Solves `A x = b` with fault-free kernels.
pub fn gmres_solve<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &GmresConfig,
) -> (Vec<f64>, SolveReport) {
    gmres_solve_instrumented(a, b, x0, cfg, &NoFaults, SiteContext::default())
}

/// Solves `A x = b` with *right preconditioning*: GMRES runs on
/// `B = A·M⁻¹`, solves `B u = r₀`, and recovers the update `M⁻¹u`. The
/// residual is invariant under the substitution (`b − A x = b − B u`),
/// so the convergence test, the reported residual history and the
/// Hessenberg-bound detector semantics all survive unchanged — see the
/// [`crate::precond`] module docs. With [`PrecondKind::None`] this *is*
/// [`gmres_solve`], bit for bit.
///
/// When `x0` is nonzero the solver iterates on the correction
/// (`B u = r₀ = b − A x₀`, `x = x₀ + M⁻¹u`) with the relative target
/// rescaled so convergence still means `‖b − A x‖ ≤ tol·‖b‖`.
///
/// [`PrecondKind::None`]: crate::precond::PrecondKind::None
pub fn gmres_solve_right_precond<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &GmresConfig,
    precond: &crate::precond::BuiltPrecond,
) -> (Vec<f64>, SolveReport) {
    if precond.is_none() {
        return gmres_solve(a, b, x0, cfg);
    }
    let n = a.nrows();
    assert!(a.is_square(), "gmres: operator must be square");
    assert_eq!(b.len(), n, "gmres: rhs length");

    let (r0, x_base) = match x0 {
        Some(x0) if x0.iter().any(|&v| v != 0.0) => {
            let mut r = vec![0.0; n];
            residual(a, b, x0, &mut r);
            (r, Some(x0.to_vec()))
        }
        _ => (b.to_vec(), None),
    };
    let bnorm = vector::nrm2(b);
    let r0norm = vector::nrm2(&r0);
    let mut cfg_u = *cfg;
    if cfg.tol > 0.0 && r0norm > 0.0 && bnorm > 0.0 {
        // Correction form: the inner target tol·‖b‖ expressed relative
        // to the actual rhs r0.
        cfg_u.tol = cfg.tol * bnorm / r0norm;
    }

    let op = FnOperator::square(n, |u: &[f64], y: &mut [f64]| {
        let mut z = vec![0.0; n];
        precond.solve(u, &mut z);
        a.apply(&z, y);
    });
    let (u, mut report) = gmres_solve(&op, &r0, None, &cfg_u);

    let mut x = vec![0.0; n];
    precond.solve(&u, &mut x);
    if let Some(base) = x_base {
        for i in 0..n {
            x[i] += base[i];
        }
    }
    let mut r = vec![0.0; n];
    residual(a, b, &x, &mut r);
    report.true_residual_norm = Some(vector::nrm2(&r));
    (x, report)
}

/// Solves `A x = b` with every orthogonalization coefficient passing
/// through `injector` — the unreliable ("sandboxed guest") mode.
pub fn gmres_solve_instrumented<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &GmresConfig,
    injector: &dyn FaultInjector,
    ctx: SiteContext,
) -> (Vec<f64>, SolveReport) {
    let n = a.nrows();
    assert!(a.is_square(), "gmres: operator must be square");
    assert_eq!(b.len(), n, "gmres: rhs length");
    // Timing span over the whole (possibly restarted) solve; nests
    // under the server's `solve.exec` root in span logs. Durations are
    // wall-clock, so this never touches the Det channel.
    static EV_SOLVE: sdc_obs::Callsite =
        sdc_obs::Callsite { name: "gmres.solve", channel: sdc_obs::Channel::Timing };
    let mut solve_span = sdc_obs::span(&EV_SOLVE);
    if let Some(s) = &mut solve_span {
        s.u64("n", n as u64).u64("inner_solve", ctx.inner_solve as u64);
    }
    let mut report = SolveReport::new();
    let mut x = match x0 {
        Some(x0) => {
            assert_eq!(x0.len(), n, "gmres: x0 length");
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let bnorm = vector::nrm2(b);
    if bnorm == 0.0 {
        // The exact solution of A x = 0 with a nonsingular A.
        x.fill(0.0);
        report.outcome = SolveOutcome::Converged;
        report.residual_norm = 0.0;
        report.true_residual_norm = Some(0.0);
        return (x, report);
    }
    let target = cfg.tol * bnorm;

    let mut iterations_done = 0usize;
    let mut restarts_left = cfg.max_detector_restarts;
    let mut r = vec![0.0; n];
    let mut finished: Option<SolveOutcome> = None;

    'cycles: while finished.is_none() {
        residual(a, b, &x, &mut r);
        let beta = vector::nrm2(&r);
        if report.residual_history.is_empty() {
            report.residual_history.push(beta);
        }
        report.residual_norm = beta;
        if !beta.is_finite() {
            finished =
                Some(SolveOutcome::NumericalBreakdown("non-finite residual at cycle start".into()));
            break;
        }
        if cfg.tol > 0.0 && beta <= target {
            finished = Some(SolveOutcome::Converged);
            break;
        }
        if beta == 0.0 {
            finished = Some(SolveOutcome::Converged);
            break;
        }

        let m = cfg.restart.unwrap_or(cfg.max_iters).max(1);
        let breakdown_tol = cfg.breakdown_rel * beta;
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        let mut q1 = r.clone();
        vector::scal(1.0 / beta, &mut q1);
        basis.push(q1);
        let mut hqr = HessenbergQr::new(beta);
        let mut w = vec![0.0; n];

        let mut j = 0usize;
        while j < m && iterations_done < cfg.max_iters {
            j += 1;
            iterations_done += 1;
            a.apply(&basis[j - 1], &mut w);
            let ores = orthogonalize(
                cfg.ortho,
                &basis,
                &mut w,
                OrthoSiteCtx {
                    outer_iteration: ctx.outer_iteration,
                    inner_solve: ctx.inner_solve,
                    column: j,
                },
                injector,
                cfg.detector.as_ref(),
            );
            report.detector_events.extend(ores.violations.iter().copied());
            if !ores.violations.is_empty() {
                let response = cfg.detector.expect("violations imply a detector").response;
                if sdc_obs::enabled() {
                    for v in &ores.violations {
                        sdc_obs::Event::new(&EV_DETECT)
                            .u64("outer", ctx.outer_iteration as u64)
                            .u64("inner_solve", ctx.inner_solve as u64)
                            .u64("j", j as u64)
                            .u64("loop_index", v.site.loop_index as u64)
                            .f64("value", v.value)
                            .f64("bound", v.bound)
                            .str("response", format!("{response:?}"))
                            .emit();
                    }
                }
                match response {
                    DetectorResponse::Record => {}
                    DetectorResponse::RestartInner => {
                        if restarts_left == 0 {
                            finished = Some(SolveOutcome::Halted(ores.violations[0]));
                            break 'cycles;
                        }
                        restarts_left -= 1;
                        report.detector_restarts += 1;
                        // A transient fault leaves the hardware healthy:
                        // redo the solve from scratch with a full budget.
                        iterations_done = 0;
                        continue 'cycles;
                    }
                    DetectorResponse::AbortInner => {
                        // Use the columns accumulated before the tainted
                        // one, then stop.
                        apply_update(&mut x, &basis, &hqr, cfg.lsq_policy, &mut report);
                        finished = Some(SolveOutcome::MaxIterations);
                        break 'cycles;
                    }
                    DetectorResponse::Halt => {
                        finished = Some(SolveOutcome::Halted(ores.violations[0]));
                        break 'cycles;
                    }
                }
            }

            let mut hcol = ores.h;
            hcol.push(ores.vnorm);
            let res_est = hqr.push_column(&hcol);
            report.residual_history.push(res_est);
            report.residual_norm = res_est;
            if sdc_obs::enabled() {
                sdc_obs::Event::new(&EV_ITER)
                    .u64("outer", ctx.outer_iteration as u64)
                    .u64("inner_solve", ctx.inner_solve as u64)
                    .u64("j", j as u64)
                    .f64("res_est", res_est)
                    .f64("h_next", ores.vnorm)
                    .u64("violations", ores.violations.len() as u64)
                    .emit();
            }

            #[allow(clippy::neg_cmp_op_on_partial_ord)] // a NaN norm must count as breakdown
            if !(ores.vnorm.abs() > breakdown_tol) {
                // Invariant subspace (or a faulted norm faking one — the
                // reliable outer layer is who verifies).
                apply_update(&mut x, &basis, &hqr, cfg.lsq_policy, &mut report);
                finished = Some(SolveOutcome::InvariantSubspace);
                break 'cycles;
            }
            if cfg.tol > 0.0 && res_est <= target {
                apply_update(&mut x, &basis, &hqr, cfg.lsq_policy, &mut report);
                finished = Some(SolveOutcome::Converged);
                break 'cycles;
            }

            let mut q_next = w.clone();
            vector::scal(1.0 / ores.vnorm, &mut q_next);
            basis.push(q_next);
        }

        // Cycle exhausted: fold the update into x.
        apply_update(&mut x, &basis, &hqr, cfg.lsq_policy, &mut report);
        if matches!(report.outcome, SolveOutcome::NumericalBreakdown(_)) {
            break 'cycles;
        }
        if iterations_done >= cfg.max_iters {
            finished = Some(SolveOutcome::MaxIterations);
        }
    }

    // A numerical breakdown recorded by any apply_update is loud and takes
    // precedence over whatever the control flow concluded.
    if !matches!(report.outcome, SolveOutcome::NumericalBreakdown(_)) {
        report.outcome = finished.unwrap_or(SolveOutcome::MaxIterations);
    }
    report.iterations = report.residual_history.len().saturating_sub(1);
    // One reliable residual evaluation at exit (cheap: a single SpMV).
    residual(a, b, &x, &mut r);
    report.true_residual_norm = Some(vector::nrm2(&r));
    report.injections = injector.records();
    if sdc_obs::enabled() {
        sdc_obs::Event::new(&EV_DONE)
            .u64("outer", ctx.outer_iteration as u64)
            .u64("inner_solve", ctx.inner_solve as u64)
            .str("outcome", report.outcome.label().to_string())
            .u64("iterations", report.iterations as u64)
            .f64("res_est", report.residual_norm)
            .f64("true_residual", report.true_residual_norm.unwrap_or(f64::NAN))
            .u64("detector_restarts", report.detector_restarts as u64)
            .u64("injections", report.injections.len() as u64)
            .emit();
    }
    (x, report)
}

/// Solves the projected problem and applies `x ← x + Q y`. On failure,
/// stashes a numerical-breakdown marker in the report (read back by
/// [`report_numerical_breakdown`]).
fn apply_update(
    x: &mut [f64],
    basis: &[Vec<f64>],
    hqr: &HessenbergQr,
    policy: LstsqPolicy,
    report: &mut SolveReport,
) {
    let k = hqr.k();
    if k == 0 {
        return;
    }
    match solve_projected(&hqr.r_matrix(), hqr.rhs(), policy) {
        Ok(out) => {
            for (c, &yc) in out.y.iter().enumerate() {
                vector::par_axpy(yc, &basis[c], x);
            }
        }
        Err(e) => {
            report.residual_history.push(f64::NAN);
            report.outcome = SolveOutcome::NumericalBreakdown(e.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_faults::trigger::LoopPosition;
    use sdc_faults::{FaultModel, SingleFaultInjector, SitePredicate, Trigger};
    use sdc_sparse::gallery;

    fn b_for(a: &sdc_sparse::CsrMatrix) -> Vec<f64> {
        // b = A·1 so the exact solution is the ones vector.
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        b
    }

    fn err_vs_ones(x: &[f64]) -> f64 {
        x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn solves_poisson_to_tolerance() {
        let a = gallery::poisson2d(12);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-10, max_iters: 500, ..Default::default() };
        let (x, rep) = gmres_solve(&a, &b, None, &cfg);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert!(err_vs_ones(&x) < 1e-7, "error {}", err_vs_ones(&x));
        assert!(rep.true_residual_norm.unwrap() <= 1e-10 * vector::nrm2(&b) * 10.0);
    }

    #[test]
    fn residual_history_is_monotone() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-10, max_iters: 300, ..Default::default() };
        let (_, rep) = gmres_solve(&a, &b, None, &cfg);
        for w in rep.residual_history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12), "residual increased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn restarted_gmres_converges() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg =
            GmresConfig { tol: 1e-8, max_iters: 3000, restart: Some(20), ..Default::default() };
        let (x, rep) = gmres_solve(&a, &b, None, &cfg);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert!(err_vs_ones(&x) < 1e-5);
    }

    #[test]
    fn fixed_iteration_mode_runs_exactly_m() {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 0.0, max_iters: 25, ..Default::default() };
        let (_, rep) = gmres_solve(&a, &b, None, &cfg);
        assert_eq!(rep.iterations, 25);
        assert_eq!(rep.outcome, SolveOutcome::MaxIterations);
        // It still reduced the residual substantially.
        let last = *rep.residual_history.last().unwrap();
        assert!(last < rep.residual_history[0] * 0.5);
    }

    #[test]
    fn nonsymmetric_system_converges() {
        let a = gallery::convection_diffusion_2d(10, 2.0, 1.0);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-10, max_iters: 400, ..Default::default() };
        let (x, rep) = gmres_solve(&a, &b, None, &cfg);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert!(err_vs_ones(&x) < 1e-6);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-10, max_iters: 500, ..Default::default() };
        let (x1, rep_cold) = gmres_solve(&a, &b, None, &cfg);
        let (_, rep_warm) = gmres_solve(&a, &b, Some(&x1), &cfg);
        assert!(rep_warm.iterations <= 1, "warm start from the solution: {}", rep_warm.iterations);
        assert!(rep_cold.iterations > 5);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = gallery::poisson2d(5);
        let b = vec![0.0; a.nrows()];
        let (x, rep) = gmres_solve(&a, &b, None, &GmresConfig::default());
        assert!(x.iter().all(|&v| v == 0.0));
        assert!(rep.outcome.is_converged());
    }

    #[test]
    fn happy_breakdown_on_invariant_subspace() {
        // A = I: the first Krylov step is already invariant.
        let a = sdc_sparse::CsrMatrix::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64 + 1.0).collect();
        let cfg = GmresConfig { tol: 1e-12, max_iters: 10, ..Default::default() };
        let (x, rep) = gmres_solve(&a, &b, None, &cfg);
        for i in 0..10 {
            assert!((x[i] - b[i]).abs() < 1e-12);
        }
        assert!(rep.outcome.is_converged());
        assert!(rep.iterations <= 2);
    }

    #[test]
    fn fault_without_detector_degrades_solution() {
        // Class-1 fault, no detector: the solve keeps running on tainted
        // data (unreliable mode) — exactly the behaviour the outer solver
        // must cope with.
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let inj = SingleFaultInjector::new(
            FaultModel::CLASS1_HUGE,
            Trigger::once(SitePredicate::mgs_site(1, 5, LoopPosition::First)),
        );
        let cfg = GmresConfig { tol: 0.0, max_iters: 25, ..Default::default() };
        let (x, rep) = gmres_solve_instrumented(
            &a,
            &b,
            None,
            &cfg,
            &inj,
            SiteContext { outer_iteration: 1, inner_solve: 1 },
        );
        assert_eq!(rep.injections.len(), 1, "exactly one SDC committed");
        assert_eq!(rep.detector_events.len(), 0, "no detector configured");
        // The returned iterate is finite (GMRES "runs through") but the
        // corrupted column costs at least one effective Krylov dimension:
        // the true residual is measurably worse than fault-free.
        assert!(x.iter().all(|v| v.is_finite()));
        let (xg, repg) = gmres_solve(&a, &b, None, &cfg);
        let res_f = rep.true_residual_norm.unwrap();
        let res_g = repg.true_residual_norm.unwrap();
        assert!(
            res_f > 1.2 * res_g,
            "faulted true residual {res_f} not measurably worse than fault-free {res_g}"
        );
        let diff: f64 = x.iter().zip(xg.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(diff > 1e-10 * err_vs_ones(&xg).max(1e-300), "solutions identical?");
    }

    #[test]
    fn detector_restart_recovers_fault_free_quality() {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let det = SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner);
        let inj = SingleFaultInjector::new(
            FaultModel::CLASS1_HUGE,
            Trigger::once(SitePredicate::mgs_site(1, 3, LoopPosition::First)),
        );
        let cfg =
            GmresConfig { tol: 0.0, max_iters: 25, detector: Some(det), ..Default::default() };
        let (x, rep) = gmres_solve_instrumented(
            &a,
            &b,
            None,
            &cfg,
            &inj,
            SiteContext { outer_iteration: 1, inner_solve: 1 },
        );
        assert_eq!(rep.detector_restarts, 1);
        assert!(rep.detected_anything());
        // After the restart the transient fault is gone: solution quality
        // matches the fault-free run.
        let (xg, _) = gmres_solve(&a, &b, None, &cfg);
        let diff: f64 = x.iter().zip(xg.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(diff < 1e-12, "restarted solve must equal fault-free solve, diff={diff}");
    }

    #[test]
    fn detector_halt_is_loud() {
        let a = gallery::poisson2d(6);
        let b = b_for(&a);
        let det = SdcDetector::with_frobenius_bound(&a, DetectorResponse::Halt);
        let inj = SingleFaultInjector::new(
            FaultModel::CLASS1_HUGE,
            Trigger::once(SitePredicate::mgs_site(1, 2, LoopPosition::First)),
        );
        let cfg =
            GmresConfig { tol: 0.0, max_iters: 25, detector: Some(det), ..Default::default() };
        let (_, rep) = gmres_solve_instrumented(
            &a,
            &b,
            None,
            &cfg,
            &inj,
            SiteContext { outer_iteration: 1, inner_solve: 1 },
        );
        assert!(matches!(rep.outcome, SolveOutcome::Halted(_)), "{:?}", rep.outcome);
        assert!(rep.outcome.is_loud_failure());
    }

    #[test]
    fn detector_never_false_positives_fault_free() {
        for m in [6, 9, 12] {
            let a = gallery::poisson2d(m);
            let b = b_for(&a);
            let det = SdcDetector::with_frobenius_bound(&a, DetectorResponse::Halt);
            let cfg = GmresConfig {
                tol: 1e-10,
                max_iters: 400,
                detector: Some(det),
                ..Default::default()
            };
            let (_, rep) = gmres_solve(&a, &b, None, &cfg);
            assert!(rep.outcome.is_converged(), "m={m}: {:?}", rep.outcome);
            assert!(rep.detector_events.is_empty(), "m={m}: false positive!");
        }
    }

    #[test]
    fn cgs_and_cgs2_also_converge() {
        let a = gallery::poisson2d(9);
        let b = b_for(&a);
        for ortho in [OrthoStrategy::Cgs, OrthoStrategy::Cgs2] {
            let cfg = GmresConfig { tol: 1e-9, max_iters: 300, ortho, ..Default::default() };
            let (x, rep) = gmres_solve(&a, &b, None, &cfg);
            assert!(rep.outcome.is_converged(), "{ortho:?}: {:?}", rep.outcome);
            assert!(err_vs_ones(&x) < 1e-5, "{ortho:?}");
        }
    }

    #[test]
    fn rank_revealing_policy_matches_standard_fault_free() {
        let a = gallery::poisson2d(9);
        let b = b_for(&a);
        let std_cfg = GmresConfig { tol: 1e-9, max_iters: 300, ..Default::default() };
        let rr_cfg =
            GmresConfig { lsq_policy: LstsqPolicy::RankRevealing { tol: 1e-12 }, ..std_cfg };
        let (x1, r1) = gmres_solve(&a, &b, None, &std_cfg);
        let (x2, r2) = gmres_solve(&a, &b, None, &rr_cfg);
        assert_eq!(r1.iterations, r2.iterations);
        let diff: f64 = x1.iter().zip(x2.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(diff < 1e-8, "policies diverged fault-free: {diff}");
    }

    #[test]
    fn right_precond_none_is_plain_gmres_bit_for_bit() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-9, max_iters: 300, ..Default::default() };
        let (x1, r1) = gmres_solve(&a, &b, None, &cfg);
        let none = crate::precond::BuiltPrecond::None;
        let (x2, r2) = gmres_solve_right_precond(&a, &b, None, &cfg, &none);
        assert_eq!(r1.iterations, r2.iterations);
        for i in 0..x1.len() {
            assert_eq!(x1[i].to_bits(), x2[i].to_bits(), "x[{i}]");
        }
    }

    #[test]
    fn right_precond_cuts_iterations_and_converges_truly() {
        use crate::precond::PrecondKind;
        let a = gallery::poisson2d(20);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-8, max_iters: 400, ..Default::default() };
        let (_, plain) = gmres_solve(&a, &b, None, &cfg);
        for kind in [PrecondKind::Jacobi, PrecondKind::Ilu0, PrecondKind::Chebyshev] {
            let p = kind.build(&a).unwrap();
            let (x, rep) = gmres_solve_right_precond(&a, &b, None, &cfg, &p);
            assert!(rep.outcome.is_converged(), "{kind}: {:?}", rep.outcome);
            let true_res = rep.true_residual_norm.unwrap();
            assert!(true_res <= 10.0 * 1e-8 * vector::nrm2(&b), "{kind}: true residual {true_res}");
            assert!(err_vs_ones(&x) < 1e-5, "{kind}");
            // Jacobi on constant-diagonal Poisson is a scalar scaling
            // (same Krylov space); the strong preconditioners must cut
            // iterations, Chebyshev by at least 2x even at this size.
            match kind {
                PrecondKind::Ilu0 => assert!(
                    rep.iterations < plain.iterations,
                    "{kind}: {} vs {}",
                    rep.iterations,
                    plain.iterations
                ),
                PrecondKind::Chebyshev => assert!(
                    rep.iterations * 2 <= plain.iterations,
                    "{kind} must at least halve iterations: {} vs {}",
                    rep.iterations,
                    plain.iterations
                ),
                _ => {}
            }
        }
    }

    #[test]
    fn right_precond_honors_nonzero_initial_guess() {
        use crate::precond::PrecondKind;
        let a = gallery::poisson2d(12);
        let b = b_for(&a);
        let n = b.len();
        let x0: Vec<f64> = (0..n).map(|i| 0.5 + (i as f64 * 0.13).sin() * 0.1).collect();
        let p = PrecondKind::Ilu0.build(&a).unwrap();
        let cfg = GmresConfig { tol: 1e-9, max_iters: 300, ..Default::default() };
        let (x, rep) = gmres_solve_right_precond(&a, &b, Some(&x0), &cfg, &p);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert!(rep.true_residual_norm.unwrap() <= 1e-8 * vector::nrm2(&b));
        assert!(err_vs_ones(&x) < 1e-6);
    }
}

//! An Online-ABFT-style baseline: periodic orthogonality checking with
//! rollback (after Chen, PPoPP 2013 — reference 18 of the paper).
//!
//! The paper contrasts its approach with Chen's: *"Chen performs
//! additional computation and parallel communication in order to check
//! invariants of the iterative linear solvers… If those invariants are
//! violated, the solver can roll back one or more iterations and resume
//! from the last known correct point."* This module implements that
//! strategy for GMRES so the trade-off can be measured head-to-head:
//!
//! * **Check**: every `d` iterations, verify that the newest Arnoldi
//!   basis vector is orthogonal to *all* previous ones (`j` extra dot
//!   products — in a distributed setting, a global reduction) and has
//!   unit norm. Under MGS, a corrupted projection coefficient leaves a
//!   residual component along the corresponding basis vector, so this
//!   check catches even faults *inside* the Eq.-3 bound (the paper's
//!   undetectable classes 2 and 3) whenever the corrupted coefficient was
//!   numerically significant.
//! * **Respond**: roll back — discard the Krylov space and restart from
//!   the last checkpoint (the solution iterate at cycle start).
//!
//! The price, relative to the paper's detector: `O(j)` extra dots per
//! check instead of one comparison, plus checkpoint/rollback machinery —
//! exactly the cost the paper's communication-free bound avoids.

use crate::gmres::SiteContext;
use crate::operator::{residual, LinearOperator};
use crate::ortho::{orthogonalize, OrthoSiteCtx, OrthoStrategy};
use crate::telemetry::{SolveOutcome, SolveReport};
use sdc_dense::hessenberg_qr::HessenbergQr;
use sdc_dense::lstsq::{solve_projected, LstsqPolicy};
use sdc_dense::vector;
use sdc_faults::{FaultInjector, NoFaults};

/// Configuration for the ABFT-checked GMRES.
#[derive(Clone, Copy, Debug)]
pub struct AbftGmresConfig {
    /// Relative residual target (`0.0` = fixed-iteration mode).
    pub tol: f64,
    /// Total iteration budget.
    pub max_iters: usize,
    /// Orthogonalization variant.
    pub ortho: OrthoStrategy,
    /// Check period `d`: verify invariants every `d` iterations.
    pub check_every: usize,
    /// Orthogonality violation threshold for `|q_new · q_i|`.
    pub ortho_tol: f64,
    /// Unit-norm violation threshold for `|‖q_new‖ − 1|`.
    pub norm_tol: f64,
    /// Rollbacks allowed before giving up loudly.
    pub max_rollbacks: usize,
    /// Noise floor: skip checks once `h_{j+1,j} < check_floor_rel · β`.
    /// Near an invariant subspace the normalized basis vector is
    /// rounding noise and *legitimately* non-orthogonal; checking there
    /// would produce false positives (a practical caveat of
    /// orthogonality-based ABFT the bound-based detector does not have).
    pub check_floor_rel: f64,
}

impl Default for AbftGmresConfig {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_iters: 200,
            ortho: OrthoStrategy::Mgs,
            check_every: 5,
            ortho_tol: 1e-4,
            norm_tol: 1e-8,
            max_rollbacks: 4,
            check_floor_rel: 1e-8,
        }
    }
}

/// Cost and event counters for the ABFT run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbftStats {
    /// Invariant checks performed.
    pub checks: usize,
    /// Extra dot products spent on checks.
    pub extra_dots: usize,
    /// Violations observed.
    pub violations: usize,
    /// Rollbacks taken.
    pub rollbacks: usize,
}

/// GMRES with periodic orthogonality checks and checkpoint/rollback.
pub fn abft_gmres_solve<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &AbftGmresConfig,
    injector: &dyn FaultInjector,
    ctx: SiteContext,
) -> (Vec<f64>, SolveReport, AbftStats) {
    let n = a.nrows();
    assert!(a.is_square(), "abft_gmres: operator must be square");
    assert_eq!(b.len(), n, "abft_gmres: rhs length");
    let mut report = SolveReport::new();
    let mut stats = AbftStats::default();
    let mut x = match x0 {
        Some(x0) => x0.to_vec(),
        None => vec![0.0; n],
    };
    let bnorm = vector::nrm2(b);
    if bnorm == 0.0 {
        x.fill(0.0);
        report.outcome = SolveOutcome::Converged;
        report.true_residual_norm = Some(0.0);
        return (x, report, stats);
    }
    let target = cfg.tol * bnorm;
    let mut iterations_done = 0usize;
    let mut r = vec![0.0; n];
    let mut finished: Option<SolveOutcome> = None;

    'cycles: while finished.is_none() {
        // The checkpoint is the iterate at cycle start: "the last known
        // correct point".
        residual(a, b, &x, &mut r);
        let beta = vector::nrm2(&r);
        if report.residual_history.is_empty() {
            report.residual_history.push(beta);
        }
        if !beta.is_finite() {
            finished = Some(SolveOutcome::NumericalBreakdown("non-finite residual".into()));
            break;
        }
        if (cfg.tol > 0.0 && beta <= target) || beta == 0.0 {
            finished = Some(SolveOutcome::Converged);
            break;
        }
        let mut basis: Vec<Vec<f64>> = Vec::new();
        let mut q1 = r.clone();
        vector::scal(1.0 / beta, &mut q1);
        basis.push(q1);
        let mut hqr = HessenbergQr::new(beta);
        let mut w = vec![0.0; n];
        let breakdown_tol = 1e-13 * beta;

        let mut j = 0usize;
        // Audit state per basis vector: q₁ is exact by construction;
        // vectors normalized in the noise regime are exempt (their
        // non-orthogonality is legitimate).
        let mut audited: Vec<bool> = vec![true];
        while j < cfg.max_iters && iterations_done < cfg.max_iters {
            j += 1;
            iterations_done += 1;
            a.apply(&basis[j - 1], &mut w);
            let ores = orthogonalize(
                cfg.ortho,
                &basis,
                &mut w,
                OrthoSiteCtx {
                    outer_iteration: ctx.outer_iteration,
                    inner_solve: ctx.inner_solve,
                    column: j,
                },
                injector,
                None,
            );
            let mut hcol = ores.h;
            hcol.push(ores.vnorm);
            let hnorm = vector::nrm2(&hcol);
            let res_est = hqr.push_column(&hcol);
            report.residual_history.push(res_est);
            report.residual_norm = res_est;

            #[allow(clippy::neg_cmp_op_on_partial_ord)] // a NaN norm must count as breakdown
            let breakdown = !(ores.vnorm.abs() > breakdown_tol);
            let mut q_next = w.clone();
            if !breakdown {
                vector::scal(1.0 / ores.vnorm, &mut q_next);
            }

            // ---- Online-ABFT check.
            //
            // Runs on schedule (every `check_every` iterations) and,
            // additionally, before trusting any breakdown: an invariant
            // subspace declared over an unverified basis could be a
            // corruption artifact. The candidate q_next joins the audit
            // only while its normalization is healthy (in the noise
            // regime near a true invariant subspace, orthogonality loss
            // is legitimate — a practical caveat of orthogonality-based
            // ABFT that the bound-based detector does not share).
            //
            // The orthogonality tolerance is scaled by ‖h‖/h_{j+1,j}: the
            // loss MGS legitimately commits when normalizing a nearly
            // invariant direction is O(ε·‖A q_j‖ / h_{j+1,j}).
            let candidate_healthy = !breakdown && ores.vnorm > cfg.check_floor_rel * beta;
            let scheduled = j % cfg.check_every == 0;
            let unaudited_pending = audited.iter().any(|&a| !a);
            if (scheduled && candidate_healthy) || ((breakdown || scheduled) && unaudited_pending) {
                stats.checks += 1;
                let eff_ortho_tol = cfg
                    .ortho_tol
                    .max(1e4 * f64::EPSILON * hnorm / ores.vnorm.abs().max(f64::MIN_POSITIVE));
                let mut violated = false;
                if candidate_healthy {
                    let qn = vector::nrm2(&q_next);
                    stats.extra_dots += 1;
                    if (qn - 1.0).abs() > cfg.norm_tol {
                        violated = true;
                    }
                }
                if !violated {
                    // Verify every not-yet-audited basis vector (plus the
                    // healthy candidate) against all its predecessors —
                    // corruption committed anywhere since the last check
                    // is caught here.
                    let upper = if candidate_healthy { basis.len() } else { basis.len() - 1 };
                    'check: for k in 1..=upper {
                        if k < basis.len() && audited[k] {
                            continue;
                        }
                        let qk = if k == basis.len() { &q_next } else { &basis[k] };
                        let tol_k = if k == basis.len() { eff_ortho_tol } else { cfg.ortho_tol };
                        for qi in basis.iter().take(k) {
                            stats.extra_dots += 1;
                            let d = vector::par_dot(qi, qk).abs();
                            if d > tol_k {
                                if std::env::var_os("SDC_ABFT_DEBUG").is_some() {
                                    eprintln!(
                                        "ABFT violation j={j} k={k} dot={d:.3e} tol={tol_k:.3e} vnorm={:.3e} hnorm={hnorm:.3e}",
                                        ores.vnorm
                                    );
                                }
                                violated = true;
                                break 'check;
                            }
                        }
                        if k < basis.len() {
                            audited[k] = true;
                        }
                    }
                }
                if violated {
                    stats.violations += 1;
                    if stats.rollbacks >= cfg.max_rollbacks {
                        finished = Some(SolveOutcome::NumericalBreakdown(
                            "ABFT rollback limit exceeded".into(),
                        ));
                        break 'cycles;
                    }
                    stats.rollbacks += 1;
                    // Roll back: discard the Krylov space, resume from
                    // the checkpoint (x unchanged since cycle start).
                    iterations_done = iterations_done.saturating_sub(j);
                    continue 'cycles;
                }
                if candidate_healthy {
                    // The candidate passed its audit.
                    audited.push(true);
                    basis.push(q_next);
                    if cfg.tol > 0.0 && res_est <= target {
                        apply_update(&mut x, &basis, &hqr, &mut report);
                        finished = Some(SolveOutcome::Converged);
                        break 'cycles;
                    }
                    continue;
                }
            }

            if breakdown {
                apply_update(&mut x, &basis, &hqr, &mut report);
                finished = Some(SolveOutcome::InvariantSubspace);
                break 'cycles;
            }

            // Push unaudited (scheduled checks will audit healthy ones;
            // noise-regime vectors stay exempt).
            audited.push(!candidate_healthy);
            basis.push(q_next);
            if cfg.tol > 0.0 && res_est <= target {
                apply_update(&mut x, &basis, &hqr, &mut report);
                finished = Some(SolveOutcome::Converged);
                break 'cycles;
            }
        }
        apply_update(&mut x, &basis, &hqr, &mut report);
        if matches!(report.outcome, SolveOutcome::NumericalBreakdown(_)) {
            break 'cycles;
        }
        if iterations_done >= cfg.max_iters {
            finished = Some(SolveOutcome::MaxIterations);
        }
    }

    if !matches!(report.outcome, SolveOutcome::NumericalBreakdown(_)) {
        report.outcome = finished.unwrap_or(SolveOutcome::MaxIterations);
    }
    report.iterations = iterations_done;
    residual(a, b, &x, &mut r);
    report.true_residual_norm = Some(vector::nrm2(&r));
    report.injections = injector.records();
    (x, report, stats)
}

fn apply_update(x: &mut [f64], basis: &[Vec<f64>], hqr: &HessenbergQr, report: &mut SolveReport) {
    if hqr.k() == 0 {
        return;
    }
    match solve_projected(&hqr.r_matrix(), hqr.rhs(), LstsqPolicy::Standard) {
        Ok(out) => {
            for (c, &yc) in out.y.iter().enumerate() {
                vector::par_axpy(yc, &basis[c], x);
            }
        }
        Err(e) => {
            report.outcome = SolveOutcome::NumericalBreakdown(e.to_string());
        }
    }
}

/// Fault-free convenience wrapper.
pub fn abft_gmres_solve_clean<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &AbftGmresConfig,
) -> (Vec<f64>, SolveReport, AbftStats) {
    abft_gmres_solve(a, b, x0, cfg, &NoFaults, SiteContext::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_faults::trigger::LoopPosition;
    use sdc_faults::{FaultModel, SingleFaultInjector, SitePredicate, Trigger};
    use sdc_sparse::gallery;

    fn b_for(a: &sdc_sparse::CsrMatrix) -> Vec<f64> {
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        b
    }

    #[test]
    fn fault_free_run_has_no_violations() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = AbftGmresConfig { tol: 1e-9, max_iters: 300, ..Default::default() };
        let (x, rep, stats) = abft_gmres_solve_clean(&a, &b, None, &cfg);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert_eq!(stats.violations, 0, "false positive");
        assert_eq!(stats.rollbacks, 0);
        assert!(stats.checks > 0);
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6);
    }

    #[test]
    fn class1_fault_detected_and_rolled_back() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = AbftGmresConfig { tol: 1e-9, max_iters: 400, ..Default::default() };
        let inj = SingleFaultInjector::new(
            FaultModel::CLASS1_HUGE,
            Trigger::once(SitePredicate::mgs_site(1, 4, LoopPosition::First)),
        );
        let (x, rep, stats) = abft_gmres_solve(
            &a,
            &b,
            None,
            &cfg,
            &inj,
            SiteContext { outer_iteration: 1, inner_solve: 1 },
        );
        assert_eq!(rep.injections.len(), 1);
        assert!(stats.violations >= 1, "huge fault must break orthogonality");
        assert_eq!(stats.rollbacks, 1);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "post-rollback solution wrong: {err}");
    }

    #[test]
    fn class2_fault_detected_where_eq3_bound_cannot() {
        // A ×10^-0.5 fault keeps |h| within ‖A‖_F — invisible to the
        // paper's detector — but the orthogonality check sees the
        // leftover basis component, provided the coefficient mattered.
        // Use a nonsymmetric operator so h_{1,j} is significant.
        let a = gallery::convection_diffusion_2d(12, 3.0, 1.0);
        let b = b_for(&a);
        let cfg = AbftGmresConfig {
            tol: 1e-9,
            max_iters: 200,
            check_every: 1, // check every iteration for the tightest net
            ..Default::default()
        };
        let inj = SingleFaultInjector::new(
            FaultModel::class2_slight(),
            Trigger::once(SitePredicate::mgs_site(1, 5, LoopPosition::First)),
        );
        let (_, rep, stats) = abft_gmres_solve(
            &a,
            &b,
            None,
            &cfg,
            &inj,
            SiteContext { outer_iteration: 1, inner_solve: 1 },
        );
        assert_eq!(rep.injections.len(), 1);
        assert!(
            stats.violations >= 1,
            "orthogonality check should catch a significant class-2 fault"
        );
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
    }

    #[test]
    fn persistent_fault_exhausts_rollbacks_loudly() {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg =
            AbftGmresConfig { tol: 1e-9, max_iters: 200, max_rollbacks: 2, ..Default::default() };
        // Persistent corruption: fires on every matching site.
        let inj = SingleFaultInjector::new(
            FaultModel::CLASS1_HUGE,
            Trigger::always(SitePredicate::mgs_site(1, 2, LoopPosition::First)),
        );
        let (_, rep, stats) = abft_gmres_solve(
            &a,
            &b,
            None,
            &cfg,
            &inj,
            SiteContext { outer_iteration: 1, inner_solve: 1 },
        );
        assert_eq!(stats.rollbacks, 2);
        assert!(
            matches!(rep.outcome, SolveOutcome::NumericalBreakdown(_)),
            "persistent fault must end loudly: {:?}",
            rep.outcome
        );
    }

    #[test]
    fn check_costs_are_counted() {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg = AbftGmresConfig { tol: 0.0, max_iters: 8, check_every: 4, ..Default::default() };
        let (_, _, stats) = abft_gmres_solve_clean(&a, &b, None, &cfg);
        assert_eq!(stats.checks, 2);
        // Each check costs 1 norm + pairwise dots over the unchecked
        // window: j=4 verifies q₂..q₅ (1+2+3+4 dots), j=8 verifies
        // q₆..q₉ (5+6+7+8 dots).
        assert_eq!(stats.extra_dots, 2 + (1 + 2 + 3 + 4) + (5 + 6 + 7 + 8));
        assert_eq!(stats.violations, 0);
    }
}

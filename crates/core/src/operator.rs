//! The linear-operator abstraction.
//!
//! GMRES only needs `y = A x`; abstracting it keeps the solvers usable
//! with explicit sparse matrices, matrix-free stencils, and the test
//! suite's synthetic operators alike.

use sdc_sparse::{CsrMatrix, FormatMatrix, SellMatrix};

/// Anything that can apply itself to a vector.
pub trait LinearOperator: Sync {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;
    /// Number of columns of the operator.
    fn ncols(&self) -> usize;
    /// Computes `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// True if the operator is square.
    fn is_square(&self) -> bool {
        self.nrows() == self.ncols()
    }
}

impl LinearOperator for CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.par_spmv(x, y);
    }
}

impl LinearOperator for SellMatrix {
    fn nrows(&self) -> usize {
        SellMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        SellMatrix::ncols(self)
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.par_spmv(x, y);
    }
}

// A format-committed matrix is an operator too, so campaigns can feed
// either engine to any solver (outer SpMV *and* the inner/preconditioner
// solves, which reuse the same operator). The SELL kernel is bitwise
// identical to CSR, so swapping formats here cannot change a result.
impl LinearOperator for FormatMatrix {
    fn nrows(&self) -> usize {
        FormatMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        FormatMatrix::ncols(self)
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.par_spmv(x, y);
    }
}

/// A matrix-free operator defined by a closure.
pub struct FnOperator<F: Fn(&[f64], &mut [f64]) + Sync> {
    nrows: usize,
    ncols: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64]) + Sync> FnOperator<F> {
    /// Wraps a closure as a square `n × n` operator.
    pub fn square(n: usize, f: F) -> Self {
        Self { nrows: n, ncols: n, f }
    }

    /// Wraps a closure as an `nrows × ncols` operator.
    pub fn new(nrows: usize, ncols: usize, f: F) -> Self {
        Self { nrows, ncols, f }
    }
}

impl<F: Fn(&[f64], &mut [f64]) + Sync> LinearOperator for FnOperator<F> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn nrows(&self) -> usize {
        (**self).nrows()
    }
    fn ncols(&self) -> usize {
        (**self).ncols()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }
}

/// Computes the residual `r = b − A x` (reliable helper used by outer
/// solvers and verification).
pub fn residual<A: LinearOperator + ?Sized>(a: &A, b: &[f64], x: &[f64], r: &mut [f64]) {
    a.apply(x, r);
    for i in 0..r.len() {
        r[i] = b[i] - r[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_sparse::gallery;

    #[test]
    fn csr_operator_applies() {
        let a = gallery::poisson1d(4);
        let x = [1.0, 1.0, 1.0, 1.0];
        let mut y = [0.0; 4];
        LinearOperator::apply(&a, &x, &mut y);
        assert_eq!(y, [1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn fn_operator_scales() {
        let op = FnOperator::square(3, |x, y| {
            for i in 0..3 {
                y[i] = 2.0 * x[i];
            }
        });
        assert_eq!(op.nrows(), 3);
        assert!(op.is_square());
        let mut y = [0.0; 3];
        op.apply(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, [2.0, 4.0, 6.0]);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = gallery::poisson1d(5);
        let x = [1.0, 2.0, 3.0, 2.0, 1.0];
        let mut b = [0.0; 5];
        LinearOperator::apply(&a, &x, &mut b);
        let mut r = [0.0; 5];
        residual(&a, &b, &x, &mut r);
        assert!(r.iter().all(|v| v.abs() < 1e-15));
    }

    #[test]
    fn format_operators_match_csr_bitwise() {
        use sdc_sparse::SparseFormat;
        let a = gallery::poisson2d(12);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut y_csr = vec![0.0; a.nrows()];
        LinearOperator::apply(&a, &x, &mut y_csr);

        let sell = sdc_sparse::SellMatrix::from_csr(&a);
        let mut y = vec![0.0; a.nrows()];
        LinearOperator::apply(&sell, &x, &mut y);
        assert!(y.iter().zip(&y_csr).all(|(p, q)| p.to_bits() == q.to_bits()));

        for fmt in [SparseFormat::Csr, SparseFormat::Sell, SparseFormat::Auto] {
            let m = FormatMatrix::convert(&a, fmt);
            let dyn_op: &dyn LinearOperator = &m;
            assert_eq!(dyn_op.nrows(), a.nrows());
            let mut y = vec![0.0; a.nrows()];
            dyn_op.apply(&x, &mut y);
            assert!(
                y.iter().zip(&y_csr).all(|(p, q)| p.to_bits() == q.to_bits()),
                "format {fmt:?} diverged from CSR"
            );
        }
    }

    #[test]
    fn reference_blanket_impl() {
        let a = gallery::poisson1d(3);
        let r: &CsrMatrix = &a;
        assert_eq!(LinearOperator::nrows(&r), 3);
    }
}

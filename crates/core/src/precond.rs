//! Preconditioners.
//!
//! Standard GMRES (the inner solver) is unpreconditioned in the paper's
//! experiments; the flexible machinery, however, is *about*
//! preconditioning — FT-GMRES treats the entire inner solve as a
//! (changing) preconditioner. The simple preconditioners here serve the
//! extended experiments: Jacobi scaling makes the severely
//! ill-conditioned circuit matrix tractable for the inner solver, exactly
//! the kind of "scaling the linear system" §V alludes to.

/// Application of `z = M⁻¹ q`. Implementations may be stateful (`&mut`),
/// which is what lets an inner iterative solve act as a preconditioner.
pub trait Preconditioner {
    /// Computes `z = M⁻¹ q`.
    fn apply(&mut self, q: &[f64], z: &mut [f64]);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "preconditioner"
    }
}

/// The identity preconditioner: `z = q`.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        z.copy_from_slice(q);
    }
    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Jacobi (diagonal) preconditioner: `z_i = q_i / d_i`.
#[derive(Clone, Debug)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds from a matrix diagonal. Zero or non-finite diagonal entries
    /// fall back to 1 (identity on that row), keeping the preconditioner
    /// total — the solver, not the preconditioner, reports singularity.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let inv_diag =
            diag.iter().map(|&d| if d != 0.0 && d.is_finite() { 1.0 / d } else { 1.0 }).collect();
        Self { inv_diag }
    }

    /// Builds from a sparse matrix.
    pub fn from_matrix(a: &sdc_sparse::CsrMatrix) -> Self {
        Self::from_diagonal(&a.diagonal())
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        assert_eq!(q.len(), self.inv_diag.len(), "jacobi: size mismatch");
        for i in 0..q.len() {
            z[i] = q[i] * self.inv_diag[i];
        }
    }
    fn name(&self) -> &'static str {
        "jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies() {
        let mut p = IdentityPrecond;
        let q = [1.0, 2.0, 3.0];
        let mut z = [0.0; 3];
        p.apply(&q, &mut z);
        assert_eq!(z, q);
        assert_eq!(p.name(), "identity");
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let mut p = JacobiPrecond::from_diagonal(&[2.0, 4.0, 0.5]);
        let mut z = [0.0; 3];
        p.apply(&[2.0, 4.0, 0.5], &mut z);
        assert_eq!(z, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn jacobi_zero_diagonal_falls_back_to_identity() {
        let mut p = JacobiPrecond::from_diagonal(&[0.0, 2.0]);
        let mut z = [0.0; 2];
        p.apply(&[3.0, 4.0], &mut z);
        assert_eq!(z, [3.0, 2.0]);
    }

    #[test]
    fn jacobi_from_matrix() {
        let a = sdc_sparse::gallery::poisson1d(3);
        let mut p = JacobiPrecond::from_matrix(&a);
        let mut z = [0.0; 3];
        p.apply(&[2.0, 2.0, 2.0], &mut z);
        assert_eq!(z, [1.0, 1.0, 1.0]);
    }
}

//! Preconditioners.
//!
//! Standard GMRES (the inner solver) is unpreconditioned in the paper's
//! experiments; the flexible machinery, however, is *about*
//! preconditioning — FT-GMRES treats the entire inner solve as a
//! (changing) preconditioner. This module provides the concrete
//! preconditioners of the sequel paper's opaque-preconditioner model
//! (Jacobi, ILU(0), Chebyshev), the [`PrecondKind`] axis threaded
//! through campaigns and the solve service, and the fault surface for
//! injecting SDC into preconditioner *application*.
//!
//! # Why right/flexible preconditioning preserves the residual-bound detector
//!
//! All solvers here precondition from the **right**: they run the Krylov
//! iteration on `B = A·M⁻¹`, solve `B u = b`, and recover `x = M⁻¹ u`.
//! The residual is invariant under this substitution —
//! `b − A x = b − A M⁻¹ u = b − B u` — so the *true* residual the
//! reliable outer layer checks is exactly the quantity the inner
//! iteration drives down; no preconditioned-norm translation is needed
//! (unlike left preconditioning, which reports `‖M⁻¹r‖`). The
//! Hessenberg-entry detector survives for the same reason: the inner
//! orthogonalization coefficients are now entries of the Arnoldi
//! projection of `B`, bounded by `‖B‖₂ ≤ ‖A‖₂·‖M⁻¹‖₂`, so
//! [`crate::detector::SdcDetector::with_preconditioned_bound`] scales
//! the paper's `‖A‖_F` bound by a deterministic power-iteration estimate
//! of `‖M⁻¹‖₂` (times a safety factor) and the detection story — any
//! orthogonalization value above the operator-norm bound must be
//! corrupt — carries over verbatim to the preconditioned operator.

use sdc_faults::{FaultInjector, Kernel, Site};
use sdc_sparse::norm_est::norm2_est;
use sdc_sparse::CsrMatrix;
use std::sync::OnceLock;

/// One unreliable preconditioner application inside an inner solve.
/// Deterministic channel: the apply ordinals are a pure function of the
/// solve trajectory (the inner GMRES applies its operator sequentially).
static EV_APPLY: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "precond.apply", channel: sdc_obs::Channel::Det };

/// Application of `z = M⁻¹ q`. Implementations may be stateful (`&mut`),
/// which is what lets an inner iterative solve act as a preconditioner.
pub trait Preconditioner {
    /// Computes `z = M⁻¹ q`.
    fn apply(&mut self, q: &[f64], z: &mut [f64]);

    /// One-time preparation before the first [`Preconditioner::apply`]
    /// (e.g. a factorization or a spectrum estimate). The concrete types
    /// here do their setup in their constructors, so the default is a
    /// no-op; adaptive implementations can override it.
    fn setup(&mut self) {}

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "preconditioner"
    }
}

/// The identity preconditioner: `z = q`.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        z.copy_from_slice(q);
    }
    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Jacobi (diagonal) preconditioner: `z_i = q_i / d_i`.
#[derive(Clone, Debug)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds from a matrix diagonal. Zero or non-finite diagonal entries
    /// fall back to 1 (identity on that row), keeping the preconditioner
    /// total — the solver, not the preconditioner, reports singularity.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let inv_diag =
            diag.iter().map(|&d| if d != 0.0 && d.is_finite() { 1.0 / d } else { 1.0 }).collect();
        Self { inv_diag }
    }

    /// Builds from a sparse matrix.
    pub fn from_matrix(a: &sdc_sparse::CsrMatrix) -> Self {
        Self::from_diagonal(&a.diagonal())
    }

    /// Computes `z = D⁻¹ q` (the stateless core of
    /// [`Preconditioner::apply`]). Element-wise, bitwise
    /// thread-count-independent.
    pub fn solve(&self, q: &[f64], z: &mut [f64]) {
        assert_eq!(q.len(), self.inv_diag.len(), "jacobi: size mismatch");
        for i in 0..q.len() {
            z[i] = q[i] * self.inv_diag[i];
        }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        self.solve(q, z)
    }
    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Default polynomial degree for [`ChebyshevPrecond`]: applications of
/// `A` per preconditioner solve.
pub const CHEBYSHEV_DEFAULT_DEGREE: usize = 10;

/// How far below the largest eigenvalue estimate the Chebyshev interval
/// is anchored: `λ_min := λ_max / 30` (the classic smoother default —
/// robust when the true smallest eigenvalue is unknown).
const CHEBYSHEV_EIG_RATIO: f64 = 30.0;

/// Headroom applied to the power-iteration `λ_max` estimate (which
/// converges from *below*; Chebyshev requires the interval to cover the
/// spectrum from above).
const CHEBYSHEV_EIG_BOOST: f64 = 1.1;

/// Chebyshev polynomial preconditioner: `z = p(A)·q ≈ A⁻¹q` via the
/// three-term Chebyshev semi-iteration on the interval
/// `[λ_max/ratio, λ_max]`.
///
/// This is the "opaque" preconditioner of the sequel paper's model: from
/// the solver's point of view it is a black box built from `degree`
/// unmonitored applications of `A` plus vector updates — exactly the
/// kind of component whose silent corruption the preconditioned detector
/// bound has to catch from the outside.
///
/// Every operation is element-wise or an `A`-apply (`par_spmv`, which is
/// bitwise thread-count-independent), so the application is bitwise
/// deterministic at any thread count.
#[derive(Clone, Debug)]
pub struct ChebyshevPrecond {
    a: CsrMatrix,
    degree: usize,
    /// Chebyshev interval center `(λ_max + λ_min)/2`.
    theta: f64,
    /// Chebyshev interval half-width `(λ_max − λ_min)/2`.
    delta: f64,
}

impl ChebyshevPrecond {
    /// Builds a degree-`degree` Chebyshev preconditioner for `a`,
    /// estimating `λ_max` by deterministic power iteration
    /// ([`sdc_sparse::norm_est::norm2_est`]).
    pub fn new(a: &CsrMatrix, degree: usize) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "chebyshev: matrix must be square");
        assert!(degree >= 1, "chebyshev: degree must be >= 1");
        let lmax = (norm2_est(a, 30, 1e-10).value * CHEBYSHEV_EIG_BOOST).max(1e-300);
        let lmin = lmax / CHEBYSHEV_EIG_RATIO;
        Self { a: a.clone(), degree, theta: (lmax + lmin) / 2.0, delta: (lmax - lmin) / 2.0 }
    }

    /// Builds with [`CHEBYSHEV_DEFAULT_DEGREE`].
    pub fn with_default_degree(a: &CsrMatrix) -> Self {
        Self::new(a, CHEBYSHEV_DEFAULT_DEGREE)
    }

    /// The polynomial degree (applications of `A` per solve).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Computes `z = p(A)·q` (the stateless core of
    /// [`Preconditioner::apply`]).
    pub fn solve(&self, q: &[f64], z: &mut [f64]) {
        let n = self.a.nrows();
        assert_eq!(q.len(), n, "chebyshev: rhs length");
        assert_eq!(z.len(), n, "chebyshev: output length");
        let sigma = self.theta / self.delta;
        let mut rho = 1.0 / sigma;
        // k = 1: z₁ = d₁ = q/θ (x₀ = 0 ⇒ r₀ = q).
        let mut d: Vec<f64> = q.iter().map(|&v| v / self.theta).collect();
        z.copy_from_slice(&d);
        let mut az = vec![0.0; n];
        for _ in 2..=self.degree {
            // r = q − A z.
            self.a.par_spmv(z, &mut az);
            let rho_new = 1.0 / (2.0 * sigma - rho);
            let dd = rho_new * rho;
            let dr = 2.0 * rho_new / self.delta;
            for i in 0..n {
                d[i] = dd * d[i] + dr * (q[i] - az[i]);
                z[i] += d[i];
            }
            rho = rho_new;
        }
    }
}

impl Preconditioner for ChebyshevPrecond {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        self.solve(q, z)
    }
    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

/// The preconditioner axis exposed to specs, CLIs and the solve
/// service — the `SparseFormat` pattern applied to preconditioning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PrecondKind {
    /// No preconditioning (the paper's original setup).
    #[default]
    None,
    /// Diagonal scaling.
    Jacobi,
    /// Incomplete LU with zero fill-in on the matrix pattern.
    Ilu0,
    /// Chebyshev polynomial in `A` — the opaque inner operator.
    Chebyshev,
}

impl PrecondKind {
    /// The spec/CLI string for this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            PrecondKind::None => "none",
            PrecondKind::Jacobi => "jacobi",
            PrecondKind::Ilu0 => "ilu0",
            PrecondKind::Chebyshev => "chebyshev",
        }
    }

    /// Parses a spec/CLI string.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(PrecondKind::None),
            "jacobi" => Ok(PrecondKind::Jacobi),
            "ilu0" => Ok(PrecondKind::Ilu0),
            "chebyshev" => Ok(PrecondKind::Chebyshev),
            other => Err(format!(
                "unknown preconditioner '{other}' (expected none|jacobi|ilu0|chebyshev)"
            )),
        }
    }

    /// Every kind, in wire order.
    pub fn all() -> [PrecondKind; 4] {
        [PrecondKind::None, PrecondKind::Jacobi, PrecondKind::Ilu0, PrecondKind::Chebyshev]
    }

    /// Builds the concrete preconditioner for `a`.
    pub fn build(&self, a: &CsrMatrix) -> Result<BuiltPrecond, String> {
        BuiltPrecond::build(*self, a)
    }
}

impl std::fmt::Display for PrecondKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A [`PrecondKind`] committed to a concrete matrix: the closed set of
/// preconditioners the campaign/server axes can name, applied through a
/// shared-state `&self` solve so one built instance serves any number of
/// concurrent solves.
#[derive(Clone, Debug)]
pub enum BuiltPrecond {
    /// Identity (no preconditioning).
    None,
    /// Diagonal scaling.
    Jacobi(JacobiPrecond),
    /// ILU(0) triangular solves.
    Ilu0(crate::ilu::Ilu0),
    /// Chebyshev polynomial applications.
    Chebyshev(ChebyshevPrecond),
}

impl BuiltPrecond {
    /// Builds `kind` for `a`. The only fallible kind is ILU(0) (zero or
    /// structurally missing pivot).
    pub fn build(kind: PrecondKind, a: &CsrMatrix) -> Result<Self, String> {
        Ok(match kind {
            PrecondKind::None => BuiltPrecond::None,
            PrecondKind::Jacobi => BuiltPrecond::Jacobi(JacobiPrecond::from_matrix(a)),
            PrecondKind::Ilu0 => BuiltPrecond::Ilu0(
                crate::ilu::Ilu0::factor(a).map_err(|e| format!("precond build failed: {e}"))?,
            ),
            PrecondKind::Chebyshev => {
                BuiltPrecond::Chebyshev(ChebyshevPrecond::with_default_degree(a))
            }
        })
    }

    /// The axis value this instance was built from.
    pub fn kind(&self) -> PrecondKind {
        match self {
            BuiltPrecond::None => PrecondKind::None,
            BuiltPrecond::Jacobi(_) => PrecondKind::Jacobi,
            BuiltPrecond::Ilu0(_) => PrecondKind::Ilu0,
            BuiltPrecond::Chebyshev(_) => PrecondKind::Chebyshev,
        }
    }

    /// True for the identity (`none`) kind.
    pub fn is_none(&self) -> bool {
        matches!(self, BuiltPrecond::None)
    }

    /// Computes `z = M⁻¹ q`. Every variant is element-wise, sequential
    /// triangular sweeps, or `par_spmv`-based — all bitwise
    /// thread-count-independent.
    pub fn solve(&self, q: &[f64], z: &mut [f64]) {
        match self {
            BuiltPrecond::None => z.copy_from_slice(q),
            BuiltPrecond::Jacobi(p) => p.solve(q, z),
            BuiltPrecond::Ilu0(p) => p.solve(q, z),
            BuiltPrecond::Chebyshev(p) => p.solve(q, z),
        }
    }

    /// Deterministic lower-bound estimate of `‖M⁻¹‖₂` by `iters` power
    /// iterations of `M⁻¹` from a fixed quasi-random start vector (the
    /// multiplier in the preconditioned detector bound). `n` is the
    /// operator order; the `none` kind is exactly 1.
    pub fn inv_norm_est(&self, n: usize, iters: usize) -> f64 {
        if self.is_none() || n == 0 {
            return 1.0;
        }
        // Same deterministic start vector as sdc_sparse::norm_est.
        let mut x: Vec<f64> = (0..n).map(|i| ((i as f64 + 1.0) * 0.754_877).sin() + 0.25).collect();
        let nx = sdc_dense::vector::nrm2(&x);
        if nx > 0.0 {
            for v in &mut x {
                *v /= nx;
            }
        }
        let mut z = vec![0.0; n];
        let mut est = 1.0;
        for _ in 0..iters {
            self.solve(&x, &mut z);
            let nz = sdc_dense::vector::nrm2(&z);
            if nz == 0.0 || !nz.is_finite() {
                break;
            }
            est = nz;
            for i in 0..n {
                x[i] = z[i] / nz;
            }
        }
        est
    }
}

impl Preconditioner for BuiltPrecond {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        self.solve(q, z)
    }
    fn name(&self) -> &'static str {
        self.kind().as_str()
    }
}

impl Preconditioner for &BuiltPrecond {
    fn apply(&mut self, q: &[f64], z: &mut [f64]) {
        self.solve(q, z)
    }
    fn name(&self) -> &'static str {
        self.kind().as_str()
    }
}

/// The opaque-preconditioner fault surface: wraps a [`BuiltPrecond`]
/// with a [`FaultInjector`], implementing the sequel paper's two
/// corruption models at `Kernel::Precond` sites:
///
/// * **Stored-factor corruption** (ILU(0)): on the first application,
///   every stored factor slot is offered to the injector at
///   `Site { kernel: Precond, loop_index: slot + 1 }` (iteration
///   coordinates 0 — the corruption is not tied to an iteration, it
///   *persists* for the lifetime of this wrapper, i.e. one solve).
/// * **Per-apply transient flips** (Jacobi/Chebyshev): after each
///   application, every output element is offered at
///   `Site { kernel: Precond, outer_iteration: s, inner_solve: s,
///   inner_iteration: apply ordinal, loop_index: element + 1 }`.
///
/// Injectors whose predicates target other kernels reject these sites
/// without locking, so arming the surface costs nothing on MGS-targeted
/// campaigns.
pub struct FaultedPrecond<'a> {
    base: &'a BuiltPrecond,
    injector: &'a dyn FaultInjector,
    /// Lazily corrupted stored-factor copy (`Some` only when the
    /// injector actually fired on a factor slot). Lazy so the injection
    /// is recorded during — and attributed to — the first inner solve.
    corrupted: OnceLock<Option<BuiltPrecond>>,
}

impl<'a> FaultedPrecond<'a> {
    /// Arms `base` with `injector`.
    pub fn new(base: &'a BuiltPrecond, injector: &'a dyn FaultInjector) -> Self {
        Self { base, injector, corrupted: OnceLock::new() }
    }

    /// The preconditioner actually applied: the corrupted stored-factor
    /// copy when the injector fired on one, the clean base otherwise.
    fn effective(&self) -> &BuiltPrecond {
        match self.corrupted.get_or_init(|| self.corrupt_stored_factors()) {
            Some(p) => p,
            None => self.base,
        }
    }

    fn corrupt_stored_factors(&self) -> Option<BuiltPrecond> {
        let BuiltPrecond::Ilu0(f) = self.base else { return None };
        let mut values = f.factor_data().values().to_vec();
        let mut changed = false;
        for (k, v) in values.iter_mut().enumerate() {
            let site = Site {
                kernel: Kernel::Precond,
                outer_iteration: 0,
                inner_solve: 0,
                inner_iteration: 0,
                loop_index: k + 1,
            };
            let corrupted = self.injector.corrupt(site, *v);
            if corrupted.to_bits() != v.to_bits() {
                *v = corrupted;
                changed = true;
            }
        }
        if !changed {
            return None;
        }
        let mut factor = f.factor_data().clone();
        factor.values_mut().copy_from_slice(&values);
        Some(BuiltPrecond::Ilu0(crate::ilu::Ilu0::from_factor(factor)))
    }

    /// One preconditioner application inside inner solve `solve`, the
    /// `apply_ordinal`-th operator apply of that solve — the unreliable
    /// path, with transient output flips offered to the injector.
    pub fn solve_faulted(&self, q: &[f64], z: &mut [f64], solve: usize, apply_ordinal: usize) {
        let p = self.effective();
        if sdc_obs::enabled() {
            sdc_obs::Event::new(&EV_APPLY)
                .str("kind", p.kind().as_str().to_string())
                .u64("solve", solve as u64)
                .u64("ordinal", apply_ordinal as u64)
                .bool("factors_corrupted", !std::ptr::eq(p, self.base))
                .emit();
        }
        p.solve(q, z);
        if matches!(p.kind(), PrecondKind::Jacobi | PrecondKind::Chebyshev) {
            for (i, v) in z.iter_mut().enumerate() {
                let site = Site {
                    kernel: Kernel::Precond,
                    outer_iteration: solve,
                    inner_solve: solve,
                    inner_iteration: apply_ordinal,
                    loop_index: i + 1,
                };
                *v = self.injector.corrupt(site, *v);
            }
        }
    }

    /// One application without transient flips (the final `x = M⁻¹u`
    /// mapping). Persistent stored-factor corruption still applies: the
    /// factors are what they are for the whole solve.
    pub fn solve_clean(&self, q: &[f64], z: &mut [f64]) {
        self.effective().solve(q, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_faults::campaign::FaultClass;
    use sdc_faults::trigger::{LoopPosition, SitePredicate, Trigger};
    use sdc_faults::{NoFaults, SingleFaultInjector};
    use sdc_sparse::gallery;

    #[test]
    fn identity_copies() {
        let mut p = IdentityPrecond;
        let q = [1.0, 2.0, 3.0];
        let mut z = [0.0; 3];
        p.setup();
        p.apply(&q, &mut z);
        assert_eq!(z, q);
        assert_eq!(p.name(), "identity");
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let mut p = JacobiPrecond::from_diagonal(&[2.0, 4.0, 0.5]);
        let mut z = [0.0; 3];
        p.apply(&[2.0, 4.0, 0.5], &mut z);
        assert_eq!(z, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn jacobi_zero_diagonal_falls_back_to_identity() {
        let mut p = JacobiPrecond::from_diagonal(&[0.0, 2.0]);
        let mut z = [0.0; 2];
        p.apply(&[3.0, 4.0], &mut z);
        assert_eq!(z, [3.0, 2.0]);
    }

    #[test]
    fn jacobi_from_matrix() {
        let a = sdc_sparse::gallery::poisson1d(3);
        let mut p = JacobiPrecond::from_matrix(&a);
        let mut z = [0.0; 3];
        p.apply(&[2.0, 2.0, 2.0], &mut z);
        assert_eq!(z, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn precond_kind_strings_round_trip() {
        for k in PrecondKind::all() {
            assert_eq!(PrecondKind::parse(k.as_str()).unwrap(), k);
            assert_eq!(format!("{k}"), k.as_str());
        }
        let err = PrecondKind::parse("amg").unwrap_err();
        assert!(err.contains("unknown preconditioner 'amg'"), "{err}");
        assert_eq!(PrecondKind::default(), PrecondKind::None);
    }

    #[test]
    fn chebyshev_reduces_residual_on_poisson() {
        let a = gallery::poisson2d(12);
        let n = a.nrows();
        let ones = vec![1.0; n];
        let mut b = vec![0.0; n];
        a.spmv(&ones, &mut b);
        let p = ChebyshevPrecond::with_default_degree(&a);
        let mut z = vec![0.0; n];
        p.solve(&b, &mut z);
        let mut r = vec![0.0; n];
        crate::operator::residual(&a, &b, &z, &mut r);
        let rel = sdc_dense::vector::nrm2(&r) / sdc_dense::vector::nrm2(&b);
        assert!(rel < 0.8, "Chebyshev application made no progress: rel residual {rel}");
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn built_precond_solve_matches_trait_apply() {
        let a = gallery::poisson2d(8);
        let n = a.nrows();
        let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        for kind in PrecondKind::all() {
            let built = kind.build(&a).unwrap();
            assert_eq!(built.kind(), kind);
            let mut z1 = vec![0.0; n];
            built.solve(&q, &mut z1);
            let mut z2 = vec![0.0; n];
            let mut by_ref = &built;
            by_ref.apply(&q, &mut z2);
            for i in 0..n {
                assert_eq!(z1[i].to_bits(), z2[i].to_bits());
            }
            assert!(built.inv_norm_est(n, 8) >= 0.0);
        }
        assert!((BuiltPrecond::None.inv_norm_est(5, 8) - 1.0).abs() == 0.0);
    }

    #[test]
    fn faulted_precond_transient_flip_fires_once_at_the_site() {
        let a = gallery::poisson2d(6);
        let n = a.nrows();
        let built = PrecondKind::Chebyshev.build(&a).unwrap();
        let predicate = SitePredicate {
            kernel: Some(Kernel::Precond),
            outer_iteration: None,
            inner_solve: Some(2),
            inner_iteration: Some(3),
            loop_position: LoopPosition::Index(1),
        };
        let inj = SingleFaultInjector::new(FaultClass::Huge.model(), Trigger::once(predicate));
        let fp = FaultedPrecond::new(&built, &inj);
        let q = vec![1.0; n];
        let mut clean = vec![0.0; n];
        built.solve(&q, &mut clean);
        let mut z = vec![0.0; n];
        // Wrong solve/apply coordinates: no firing.
        fp.solve_faulted(&q, &mut z, 1, 3);
        assert_eq!(inj.records().len(), 0);
        // Matching coordinates: exactly one transient flip on element 1.
        fp.solve_faulted(&q, &mut z, 2, 3);
        assert_eq!(inj.records().len(), 1);
        assert_ne!(z[0].to_bits(), clean[0].to_bits());
        assert_eq!(z[1].to_bits(), clean[1].to_bits());
        // Once-mode: the same site again stays clean.
        fp.solve_faulted(&q, &mut z, 2, 3);
        assert_eq!(inj.records().len(), 1);
        assert_eq!(z[0].to_bits(), clean[0].to_bits());
    }

    #[test]
    fn faulted_precond_ilu_stored_factor_corruption_persists() {
        let a = gallery::poisson2d(6);
        let n = a.nrows();
        let built = PrecondKind::Ilu0.build(&a).unwrap();
        let predicate = SitePredicate {
            kernel: Some(Kernel::Precond),
            outer_iteration: None,
            inner_solve: None,
            inner_iteration: None,
            loop_position: LoopPosition::Index(1),
        };
        let inj = SingleFaultInjector::new(FaultClass::Huge.model(), Trigger::once(predicate));
        let fp = FaultedPrecond::new(&built, &inj);
        let q = vec![1.0; n];
        let mut clean = vec![0.0; n];
        built.solve(&q, &mut clean);
        let mut z = vec![0.0; n];
        fp.solve_faulted(&q, &mut z, 1, 1);
        assert_eq!(inj.records().len(), 1, "stored-factor sweep commits exactly one fault");
        assert!(z.iter().zip(&clean).any(|(p, q)| p.to_bits() != q.to_bits()));
        // The corruption persists across applies (including the clean
        // final mapping) without further injections.
        let mut z2 = vec![0.0; n];
        fp.solve_clean(&q, &mut z2);
        assert_eq!(inj.records().len(), 1);
        for i in 0..n {
            assert_eq!(z[i].to_bits(), z2[i].to_bits());
        }
    }

    #[test]
    fn faulted_precond_with_no_faults_is_bitwise_clean() {
        let a = gallery::poisson2d(6);
        let n = a.nrows();
        for kind in PrecondKind::all() {
            let built = kind.build(&a).unwrap();
            let fp = FaultedPrecond::new(&built, &NoFaults);
            let q: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
            let mut clean = vec![0.0; n];
            built.solve(&q, &mut clean);
            let mut z = vec![0.0; n];
            fp.solve_faulted(&q, &mut z, 1, 1);
            for i in 0..n {
                assert_eq!(z[i].to_bits(), clean[i].to_bits(), "{kind}");
            }
        }
    }
}

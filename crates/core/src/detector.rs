//! The invariant-based SDC detector of §V.
//!
//! The orthogonalization kernel starts from `v = A q_j` with `‖q_j‖₂ = 1`,
//! so `‖v‖₂ ≤ ‖A‖₂` and every projection coefficient satisfies
//!
//! ```text
//! |h_ij| ≤ ‖A‖₂ ≤ ‖A‖_F          (Eq. 3)
//! ```
//!
//! The check `|h| ≤ bound` is inserted after the dot product (Algorithm 1,
//! lines 6–7) and after the norm (lines 9–10). It costs one comparison, no
//! communication, and its guarantees are *exact*: any value above the
//! bound is theoretically impossible, any value below it is allowed — "we
//! either detect a large error or commit a small error" (§V-C).
//!
//! The comparison is written `!(|h| ≤ bound)` so that `NaN` — which
//! compares false with everything — is flagged, inheriting IEEE-754's
//! loud-error semantics.

use sdc_faults::Site;

/// What the solver does when the detector fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorResponse {
    /// Log the violation and keep computing (observation mode — used to
    /// measure what *would* have been caught).
    Record,
    /// Discard the current inner Krylov space and restart the inner solve
    /// from scratch — the paper's suggested cheap response ("restarting
    /// the inner solve").
    RestartInner,
    /// Abandon the inner solve immediately and hand the current iterate
    /// to the reliable outer solver.
    AbortInner,
    /// Stop the whole solver and report loudly ("halting the
    /// application").
    Halt,
}

/// A detected bound violation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Violation {
    /// Where the offending value was produced.
    pub site: Site,
    /// The offending value.
    pub value: f64,
    /// The bound it violated.
    pub bound: f64,
}

/// The Hessenberg-entry bound detector.
#[derive(Clone, Copy, Debug)]
pub struct SdcDetector {
    /// The bound on `|h_ij|`: `‖A‖_F` (always safe) or a trusted
    /// estimate of `‖A‖₂` (tighter).
    pub bound: f64,
    /// Response policy.
    pub response: DetectorResponse,
}

impl SdcDetector {
    /// Detector with the paper's default bound `‖A‖_F`.
    pub fn with_frobenius_bound(a: &sdc_sparse::CsrMatrix, response: DetectorResponse) -> Self {
        Self { bound: a.norm_fro(), response }
    }

    /// Detector bound for a *right-preconditioned* iteration (the sequel
    /// paper's opaque-preconditioner model): the Arnoldi coefficients are
    /// projections of `B = A·M⁻¹`, so `|h_ij| ≤ ‖B‖₂ ≤ ‖A‖₂·‖M⁻¹‖₂`.
    /// The bound is `‖A‖_F` times a deterministic power-iteration
    /// estimate of `‖M⁻¹‖₂` times a safety factor of 2 (the estimate
    /// converges from below; the `‖A‖_F ≥ ‖A‖₂` slack absorbs the rest).
    /// For the `none` kind this is `2·‖A‖_F` — still exact, just looser
    /// than [`SdcDetector::with_frobenius_bound`]; callers keep the
    /// legacy constructor on unpreconditioned solves.
    pub fn with_preconditioned_bound(
        a: &sdc_sparse::CsrMatrix,
        precond: &crate::precond::BuiltPrecond,
        response: DetectorResponse,
    ) -> Self {
        const SAFETY: f64 = 2.0;
        let minv = precond.inv_norm_est(a.nrows(), 8).max(1.0);
        Self { bound: a.norm_fro() * minv * SAFETY, response }
    }

    /// Checks a Hessenberg value; `Some(violation)` if it is impossible
    /// under exact arithmetic.
    #[inline]
    pub fn check(&self, value: f64, site: Site) -> Option<Violation> {
        // NaN must be flagged: `!(NaN.abs() <= b)` is true.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        // negation is how NaN lands in the flagged branch
        if !(value.abs() <= self.bound) {
            Some(Violation { site, value, bound: self.bound })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_faults::Kernel;

    fn site() -> Site {
        Site::bare(Kernel::OrthoDot)
    }

    #[test]
    fn values_within_bound_pass() {
        let d = SdcDetector { bound: 446.0, response: DetectorResponse::Record };
        assert!(d.check(0.0, site()).is_none());
        assert!(d.check(446.0, site()).is_none());
        assert!(d.check(-446.0, site()).is_none());
        assert!(d.check(-445.9, site()).is_none());
    }

    #[test]
    fn values_beyond_bound_flagged() {
        let d = SdcDetector { bound: 446.0, response: DetectorResponse::Halt };
        let v = d.check(447.0, site()).expect("must flag");
        assert_eq!(v.value, 447.0);
        assert_eq!(v.bound, 446.0);
        assert!(d.check(-1e150, site()).is_some());
    }

    #[test]
    fn nan_and_inf_flagged() {
        let d = SdcDetector { bound: 10.0, response: DetectorResponse::Record };
        assert!(d.check(f64::NAN, site()).is_some(), "NaN must be flagged");
        assert!(d.check(f64::INFINITY, site()).is_some());
        assert!(d.check(f64::NEG_INFINITY, site()).is_some());
    }

    #[test]
    fn class2_and_class3_faults_are_undetectable_by_design() {
        // The paper's point: shrinking faults keep |h| within the bound,
        // so the detector cannot (and need not) catch them.
        let d = SdcDetector { bound: 446.0, response: DetectorResponse::Record };
        let h = 3.7;
        assert!(d.check(h * 10f64.powf(-0.5), site()).is_none());
        assert!(d.check(h * 1e-300, site()).is_none());
        // Class 1 on any representative entry is caught.
        assert!(d.check(h * 1e150, site()).is_some());
    }

    #[test]
    fn frobenius_bound_constructor() {
        let a = sdc_sparse::gallery::poisson2d(100);
        let d = SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner);
        assert!((d.bound - 446.0).abs() < 1.0);
        assert_eq!(d.response, DetectorResponse::RestartInner);
    }

    #[test]
    fn preconditioned_bound_scales_with_inverse_norm() {
        use crate::precond::PrecondKind;
        let a = sdc_sparse::gallery::poisson2d(20);
        let fro = a.norm_fro();
        for kind in PrecondKind::all() {
            let p = kind.build(&a).unwrap();
            let d = SdcDetector::with_preconditioned_bound(&a, &p, DetectorResponse::Record);
            // Never tighter than the unpreconditioned Frobenius bound
            // (the estimate multiplier is clamped to >= 1, safety = 2).
            assert!(d.bound >= 2.0 * fro, "{kind}: bound {} < 2*fro {fro}", d.bound);
            assert!(d.bound.is_finite(), "{kind}");
        }
        // Jacobi on Poisson: diag = 4, so ‖M⁻¹‖₂ = 1/4 < 1 — clamped.
        let jac = PrecondKind::Jacobi.build(&a).unwrap();
        let d = SdcDetector::with_preconditioned_bound(&a, &jac, DetectorResponse::Record);
        assert!((d.bound - 2.0 * fro).abs() < 1e-9);
    }
}

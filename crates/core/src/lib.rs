//! GMRES, Flexible GMRES and Fault-Tolerant GMRES with invariant-based
//! SDC detection — the primary contribution of Elliott, Hoemmen & Mueller,
//! *Evaluating the Impact of SDC on the GMRES Iterative Solver*
//! (IPDPS 2014), reproduced in Rust.
//!
//! # The pieces
//!
//! * [`operator`] — the [`operator::LinearOperator`] abstraction; sparse
//!   matrices and closures are operators.
//! * [`ortho`] — instrumented orthogonalization kernels (Modified
//!   Gram-Schmidt, Classical Gram-Schmidt, CGS with reorthogonalization).
//!   Every dot product and norm passes through a fault injector and the
//!   SDC detector: this is where the paper's experiments strike.
//! * [`detector`] — the Hessenberg-bound detector of §V:
//!   `|h_ij| ≤ ‖A‖₂ ≤ ‖A‖_F` (Eq. 3), with the response policies the
//!   solvers support (record / restart inner / abort inner / halt).
//! * [`gmres`] — restarted GMRES (Algorithm 1) with the incremental
//!   Givens-QR least-squares solve and the three §VI-D solve policies.
//! * [`fgmres`] — Flexible GMRES (Algorithm 2) with rank monitoring of
//!   the projected matrix and the "trichotomy" outcome (§VI-C).
//! * [`ftgmres`] — FT-GMRES: reliable FGMRES outer iteration around
//!   sandboxed, unreliable inner GMRES solves (§VI).
//! * [`cg`] — Conjugate Gradient, the SPD baseline Table I alludes to.
//! * [`precond`] — right/flexible preconditioning: identity, Jacobi,
//!   ILU(0) and Chebyshev implementations, the `PrecondKind` axis, and
//!   the opaque-preconditioner fault surface of the sequel paper
//!   (stored-factor corruption, per-apply transient flips).
//! * [`telemetry`] — solve reports: outcomes, residual histories,
//!   detector events, injection records.
//!
//! # Quick start
//!
//! ```
//! use sdc_gmres::prelude::*;
//! use sdc_sparse::gallery;
//!
//! let a = gallery::poisson2d(16);
//! let n = a.nrows();
//! let b = vec![1.0; n];
//! let cfg = GmresConfig { tol: 1e-10, max_iters: 400, restart: Some(40), ..Default::default() };
//! let (x, report) = gmres_solve(&a, &b, None, &cfg);
//! assert!(report.outcome.is_converged());
//! assert_eq!(x.len(), n);
//! ```

// Index-based loops intentionally mirror the paper's Algorithm 1 notation
// (ILU sweeps, Arnoldi columns); iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]

pub mod abft;
pub mod arnoldi;
pub mod cg;
pub mod detector;
pub mod fgmres;
pub mod ftgmres;
pub mod gmres;
pub mod ilu;
pub mod instrumented;
pub mod operator;
pub mod ortho;
pub mod precond;
pub mod telemetry;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cg::{cg_solve, CgConfig};
    pub use crate::detector::{DetectorResponse, SdcDetector, Violation};
    pub use crate::fgmres::{fgmres_solve, FgmresConfig};
    pub use crate::ftgmres::{
        ftgmres_solve, ftgmres_solve_precond, FtGmresConfig, InnerValidation,
    };
    pub use crate::gmres::{
        gmres_solve, gmres_solve_instrumented, gmres_solve_right_precond, GmresConfig, SiteContext,
    };
    pub use crate::operator::{FnOperator, LinearOperator};
    pub use crate::ortho::OrthoStrategy;
    pub use crate::precond::{
        BuiltPrecond, ChebyshevPrecond, FaultedPrecond, IdentityPrecond, JacobiPrecond,
        PrecondKind, Preconditioner,
    };
    pub use crate::telemetry::{SolveOutcome, SolveReport, SolveSummary, SummaryValue};
    pub use sdc_dense::lstsq::LstsqPolicy;
}

pub use prelude::*;

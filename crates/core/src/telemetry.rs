//! Solve reports: what happened, loudly.
//!
//! The paper's taxonomy demands that faults either be run through
//! (correct answer), detected, or reported — never silent. The report
//! types here carry everything an experiment needs: the outcome, the
//! iteration counts the figures plot, residual histories, every detector
//! event and every committed injection.

use crate::detector::Violation;
use sdc_faults::InjectionRecord;

/// Terminal state of a solve.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveOutcome {
    /// Residual tolerance reached (for outer/reliable solvers this is
    /// verified with a reliably computed true residual).
    Converged,
    /// Iteration budget exhausted before reaching the tolerance.
    MaxIterations,
    /// Happy breakdown: the Krylov space became invariant and the
    /// projected solution is exact (`h_{j+1,j} ≈ 0` with nonsingular
    /// projected matrix).
    InvariantSubspace,
    /// FGMRES' additional failure mode (Saad Prop. 2.2): breakdown with a
    /// *singular* projected matrix — reported loudly, part of the
    /// trichotomy.
    RankDeficient,
    /// The detector fired with [`crate::detector::DetectorResponse::Halt`].
    Halted(Violation),
    /// The projected least-squares solve could not produce usable
    /// coefficients (non-finite factors under `LstsqPolicy::Standard`).
    NumericalBreakdown(String),
}

impl SolveOutcome {
    /// True for outcomes that delivered a solution at the requested
    /// tolerance.
    pub fn is_converged(&self) -> bool {
        matches!(self, SolveOutcome::Converged | SolveOutcome::InvariantSubspace)
    }

    /// Stable machine-readable label (wire protocol, CSV, summaries).
    pub fn label(&self) -> &'static str {
        match self {
            SolveOutcome::Converged => "converged",
            SolveOutcome::MaxIterations => "max_iterations",
            SolveOutcome::InvariantSubspace => "invariant_subspace",
            SolveOutcome::RankDeficient => "rank_deficient",
            SolveOutcome::Halted(_) => "halted",
            SolveOutcome::NumericalBreakdown(_) => "numerical_breakdown",
        }
    }

    /// Human detail beyond the label, when the outcome carries one.
    pub fn detail(&self) -> Option<String> {
        match self {
            SolveOutcome::Halted(v) => Some(format!(
                "detector violation at outer {} inner {}: |h| = {:.6e} > bound {:.6e}",
                v.site.outer_iteration,
                v.site.inner_iteration,
                v.value.abs(),
                v.bound
            )),
            SolveOutcome::NumericalBreakdown(msg) => Some(msg.clone()),
            _ => None,
        }
    }

    /// True for outcomes that are loud failures (never silent).
    pub fn is_loud_failure(&self) -> bool {
        matches!(
            self,
            SolveOutcome::RankDeficient
                | SolveOutcome::Halted(_)
                | SolveOutcome::NumericalBreakdown(_)
        )
    }
}

/// Full diagnostics of one solve.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Terminal state.
    pub outcome: SolveOutcome,
    /// Iterations performed (outer iterations for nested solvers).
    pub iterations: usize,
    /// Total inner iterations across all inner solves (nested solvers
    /// only; 0 otherwise).
    pub total_inner_iterations: usize,
    /// The solver's final residual-norm estimate.
    pub residual_norm: f64,
    /// True residual `‖b − A x‖₂` computed reliably at exit (present for
    /// solvers that can afford it; `None` for raw unreliable inner
    /// solves).
    pub true_residual_norm: Option<f64>,
    /// Residual-norm estimate per iteration.
    pub residual_history: Vec<f64>,
    /// Every detector violation observed.
    pub detector_events: Vec<Violation>,
    /// Every fault actually committed by the injector.
    pub injections: Vec<InjectionRecord>,
    /// Inner-solve restarts forced by the detector
    /// ([`crate::detector::DetectorResponse::RestartInner`]).
    pub detector_restarts: usize,
    /// Inner results replaced by the reliable outer validation (non-finite
    /// data or sandbox failure).
    pub inner_rejections: usize,
}

impl SolveReport {
    /// A fresh report in the not-yet-converged state.
    pub fn new() -> Self {
        Self {
            outcome: SolveOutcome::MaxIterations,
            iterations: 0,
            total_inner_iterations: 0,
            residual_norm: f64::NAN,
            true_residual_norm: None,
            residual_history: Vec::new(),
            detector_events: Vec::new(),
            injections: Vec::new(),
            detector_restarts: 0,
            inner_rejections: 0,
        }
    }

    /// Whether any detector event was recorded.
    pub fn detected_anything(&self) -> bool {
        !self.detector_events.is_empty()
    }
}

impl Default for SolveReport {
    fn default() -> Self {
        Self::new()
    }
}

/// The flat, serialization-ready digest of a [`SolveReport`].
///
/// Every consumer that turns a report into text or JSON — the
/// calibration/experiment binaries, the `sdc_server` wire protocol —
/// goes through this one type, so field names and outcome labels cannot
/// drift between surfaces. The crate stays dependency-free: rendering to
/// a concrete JSON value lives with the JSON implementation
/// (`sdc_campaigns::summary`), which consumes [`SolveSummary::fields`].
#[derive(Clone, Debug, PartialEq)]
pub struct SolveSummary {
    /// Stable outcome label ([`SolveOutcome::label`]).
    pub outcome: &'static str,
    /// Extra outcome detail (halt violation, breakdown message).
    pub detail: Option<String>,
    /// [`SolveOutcome::is_converged`].
    pub converged: bool,
    /// Iterations performed (outer iterations for nested solvers).
    pub iterations: usize,
    /// Total inner iterations (nested solvers; 0 otherwise).
    pub total_inner_iterations: usize,
    /// The solver's final residual-norm estimate.
    pub residual_norm: f64,
    /// Reliable `‖b − A x‖₂` at exit, when the solver computed it.
    pub true_residual_norm: Option<f64>,
    /// Detector violations observed.
    pub detector_events: usize,
    /// Detector-forced inner restarts.
    pub detector_restarts: usize,
    /// Faults actually committed by the injector.
    pub injections: usize,
    /// Inner results replaced by the reliable outer validation.
    pub inner_rejections: usize,
}

/// One summary field value; keeps the field list typed without pulling a
/// JSON implementation into this crate.
#[derive(Clone, Debug, PartialEq)]
pub enum SummaryValue {
    /// A count.
    Count(usize),
    /// A norm or residual.
    Float(f64),
    /// A flag.
    Bool(bool),
    /// A label or message.
    Text(String),
}

impl SolveSummary {
    /// Digests a report.
    pub fn from_report(rep: &SolveReport) -> Self {
        Self {
            outcome: rep.outcome.label(),
            detail: rep.outcome.detail(),
            converged: rep.outcome.is_converged(),
            iterations: rep.iterations,
            total_inner_iterations: rep.total_inner_iterations,
            residual_norm: rep.residual_norm,
            true_residual_norm: rep.true_residual_norm,
            detector_events: rep.detector_events.len(),
            detector_restarts: rep.detector_restarts,
            injections: rep.injections.len(),
            inner_rejections: rep.inner_rejections,
        }
    }

    /// The summary as named fields, in a stable order. Optional fields
    /// (`detail`, `true_residual_norm`) are omitted when absent, so a
    /// serialization of the same solve is identical run to run.
    pub fn fields(&self) -> Vec<(&'static str, SummaryValue)> {
        let mut out = vec![
            ("outcome", SummaryValue::Text(self.outcome.to_string())),
            ("converged", SummaryValue::Bool(self.converged)),
            ("iterations", SummaryValue::Count(self.iterations)),
            ("total_inner_iterations", SummaryValue::Count(self.total_inner_iterations)),
            ("residual_norm", SummaryValue::Float(self.residual_norm)),
            ("detector_events", SummaryValue::Count(self.detector_events)),
            ("detector_restarts", SummaryValue::Count(self.detector_restarts)),
            ("injections", SummaryValue::Count(self.injections)),
            ("inner_rejections", SummaryValue::Count(self.inner_rejections)),
        ];
        if let Some(t) = self.true_residual_norm {
            out.push(("true_residual_norm", SummaryValue::Float(t)));
        }
        if let Some(d) = &self.detail {
            out.push(("detail", SummaryValue::Text(d.clone())));
        }
        out
    }

    /// One-line human rendering (the experiment binaries' format).
    pub fn render(&self) -> String {
        let mut s = format!(
            "outer={} inner_total={} outcome={} true_res={:.2e}",
            self.iterations,
            self.total_inner_iterations,
            self.outcome,
            self.true_residual_norm.unwrap_or(f64::NAN),
        );
        if self.detector_events > 0 || self.detector_restarts > 0 {
            s.push_str(&format!(
                " detected={} restarts={}",
                self.detector_events, self.detector_restarts
            ));
        }
        if self.injections > 0 {
            s.push_str(&format!(" injections={}", self.injections));
        }
        if self.inner_rejections > 0 {
            s.push_str(&format!(" rejected={}", self.inner_rejections));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(SolveOutcome::Converged.is_converged());
        assert!(SolveOutcome::InvariantSubspace.is_converged());
        assert!(!SolveOutcome::MaxIterations.is_converged());
        assert!(!SolveOutcome::MaxIterations.is_loud_failure());
        assert!(SolveOutcome::RankDeficient.is_loud_failure());
        assert!(SolveOutcome::NumericalBreakdown("x".into()).is_loud_failure());
    }

    #[test]
    fn fresh_report_state() {
        let r = SolveReport::new();
        assert_eq!(r.iterations, 0);
        assert!(!r.detected_anything());
        assert!(r.residual_norm.is_nan());
    }

    #[test]
    fn outcome_labels_are_stable() {
        // These strings are wire-protocol constants; changing one is a
        // breaking protocol change.
        assert_eq!(SolveOutcome::Converged.label(), "converged");
        assert_eq!(SolveOutcome::MaxIterations.label(), "max_iterations");
        assert_eq!(SolveOutcome::InvariantSubspace.label(), "invariant_subspace");
        assert_eq!(SolveOutcome::RankDeficient.label(), "rank_deficient");
        assert_eq!(SolveOutcome::NumericalBreakdown("x".into()).label(), "numerical_breakdown");
        assert_eq!(SolveOutcome::NumericalBreakdown("x".into()).detail().as_deref(), Some("x"));
        assert_eq!(SolveOutcome::Converged.detail(), None);
    }

    #[test]
    fn summary_digests_report_and_omits_absent_fields() {
        let mut rep = SolveReport::new();
        rep.outcome = SolveOutcome::Converged;
        rep.iterations = 9;
        rep.total_inner_iterations = 225;
        rep.residual_norm = 1e-9;
        let s = SolveSummary::from_report(&rep);
        assert_eq!(s.outcome, "converged");
        assert!(s.converged);
        assert_eq!(s.iterations, 9);
        let names: Vec<&str> = s.fields().iter().map(|(k, _)| *k).collect();
        assert!(!names.contains(&"true_residual_norm"));
        assert!(!names.contains(&"detail"));

        rep.true_residual_norm = Some(2e-9);
        rep.outcome = SolveOutcome::NumericalBreakdown("boom".into());
        let s = SolveSummary::from_report(&rep);
        let names: Vec<&str> = s.fields().iter().map(|(k, _)| *k).collect();
        assert!(names.contains(&"true_residual_norm"));
        assert!(names.contains(&"detail"));
        assert!(!s.converged);
    }

    #[test]
    fn render_is_one_line_and_mentions_faults_only_when_present() {
        let mut rep = SolveReport::new();
        rep.outcome = SolveOutcome::Converged;
        rep.iterations = 4;
        let s = SolveSummary::from_report(&rep).render();
        assert!(!s.contains('\n'));
        assert!(s.contains("outcome=converged"), "{s}");
        assert!(!s.contains("injections"), "{s}");
        rep.injections.push(sdc_faults::InjectionRecord {
            site: sdc_faults::Site {
                kernel: sdc_faults::Kernel::OrthoDot,
                outer_iteration: 1,
                inner_solve: 1,
                inner_iteration: 1,
                loop_index: 1,
            },
            original: 1.0,
            corrupted: 1e150,
        });
        let s = SolveSummary::from_report(&rep).render();
        assert!(s.contains("injections=1"), "{s}");
    }
}

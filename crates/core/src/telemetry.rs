//! Solve reports: what happened, loudly.
//!
//! The paper's taxonomy demands that faults either be run through
//! (correct answer), detected, or reported — never silent. The report
//! types here carry everything an experiment needs: the outcome, the
//! iteration counts the figures plot, residual histories, every detector
//! event and every committed injection.

use crate::detector::Violation;
use sdc_faults::InjectionRecord;

/// Terminal state of a solve.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveOutcome {
    /// Residual tolerance reached (for outer/reliable solvers this is
    /// verified with a reliably computed true residual).
    Converged,
    /// Iteration budget exhausted before reaching the tolerance.
    MaxIterations,
    /// Happy breakdown: the Krylov space became invariant and the
    /// projected solution is exact (`h_{j+1,j} ≈ 0` with nonsingular
    /// projected matrix).
    InvariantSubspace,
    /// FGMRES' additional failure mode (Saad Prop. 2.2): breakdown with a
    /// *singular* projected matrix — reported loudly, part of the
    /// trichotomy.
    RankDeficient,
    /// The detector fired with [`crate::detector::DetectorResponse::Halt`].
    Halted(Violation),
    /// The projected least-squares solve could not produce usable
    /// coefficients (non-finite factors under `LstsqPolicy::Standard`).
    NumericalBreakdown(String),
}

impl SolveOutcome {
    /// True for outcomes that delivered a solution at the requested
    /// tolerance.
    pub fn is_converged(&self) -> bool {
        matches!(self, SolveOutcome::Converged | SolveOutcome::InvariantSubspace)
    }

    /// True for outcomes that are loud failures (never silent).
    pub fn is_loud_failure(&self) -> bool {
        matches!(
            self,
            SolveOutcome::RankDeficient
                | SolveOutcome::Halted(_)
                | SolveOutcome::NumericalBreakdown(_)
        )
    }
}

/// Full diagnostics of one solve.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Terminal state.
    pub outcome: SolveOutcome,
    /// Iterations performed (outer iterations for nested solvers).
    pub iterations: usize,
    /// Total inner iterations across all inner solves (nested solvers
    /// only; 0 otherwise).
    pub total_inner_iterations: usize,
    /// The solver's final residual-norm estimate.
    pub residual_norm: f64,
    /// True residual `‖b − A x‖₂` computed reliably at exit (present for
    /// solvers that can afford it; `None` for raw unreliable inner
    /// solves).
    pub true_residual_norm: Option<f64>,
    /// Residual-norm estimate per iteration.
    pub residual_history: Vec<f64>,
    /// Every detector violation observed.
    pub detector_events: Vec<Violation>,
    /// Every fault actually committed by the injector.
    pub injections: Vec<InjectionRecord>,
    /// Inner-solve restarts forced by the detector
    /// ([`crate::detector::DetectorResponse::RestartInner`]).
    pub detector_restarts: usize,
    /// Inner results replaced by the reliable outer validation (non-finite
    /// data or sandbox failure).
    pub inner_rejections: usize,
}

impl SolveReport {
    /// A fresh report in the not-yet-converged state.
    pub fn new() -> Self {
        Self {
            outcome: SolveOutcome::MaxIterations,
            iterations: 0,
            total_inner_iterations: 0,
            residual_norm: f64::NAN,
            true_residual_norm: None,
            residual_history: Vec::new(),
            detector_events: Vec::new(),
            injections: Vec::new(),
            detector_restarts: 0,
            inner_rejections: 0,
        }
    }

    /// Whether any detector event was recorded.
    pub fn detected_anything(&self) -> bool {
        !self.detector_events.is_empty()
    }
}

impl Default for SolveReport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(SolveOutcome::Converged.is_converged());
        assert!(SolveOutcome::InvariantSubspace.is_converged());
        assert!(!SolveOutcome::MaxIterations.is_converged());
        assert!(!SolveOutcome::MaxIterations.is_loud_failure());
        assert!(SolveOutcome::RankDeficient.is_loud_failure());
        assert!(SolveOutcome::NumericalBreakdown("x".into()).is_loud_failure());
    }

    #[test]
    fn fresh_report_state() {
        let r = SolveReport::new();
        assert_eq!(r.iterations, 0);
        assert!(!r.detected_anything());
        assert!(r.residual_norm.is_nan());
    }
}

//! Fault-instrumented SpMV operator with optional checksum protection.
//!
//! The paper's experiments strike the orthogonalization coefficients;
//! much prior work (refs. 12 and 14 of the paper) instead strikes the sparse matrix–vector
//! product. This wrapper extends the experiment space to that fault
//! site: every output element of `y = A x` passes through the injector
//! (`Kernel::SpMv`, `loop_index` = row + 1, `inner_iteration` = apply
//! ordinal), and an optional Huang–Abraham column checksum verifies each
//! product, recording violations for the solver/experiment to read back.
//!
//! Composing this operator with the solvers needs no solver changes —
//! it is just another [`LinearOperator`].

use crate::operator::LinearOperator;
use parking_lot::Mutex;
use sdc_faults::{FaultInjector, Kernel, Site};
use sdc_sparse::checksum::{ChecksumOutcome, ColumnChecksum};
use sdc_sparse::{CsrMatrix, SellMatrix, SparseFormat};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A recorded checksum violation.
#[derive(Clone, Copy, Debug)]
pub struct ChecksumEvent {
    /// Ordinal of the offending apply (1-based).
    pub apply_ordinal: usize,
    /// The failed outcome.
    pub outcome: ChecksumOutcome,
}

/// SpMV with per-element fault injection and optional checksum auditing.
pub struct InstrumentedSpmv<'a> {
    a: &'a CsrMatrix,
    /// SELL engine when a `--format` choice resolved to SELL; `None`
    /// applies through CSR. Either way the product is bitwise identical,
    /// so instrumentation sites and checksums are format-independent.
    /// Borrowed ([`InstrumentedSpmv::with_sell`]) when many wrappers
    /// share one conversion, owned ([`InstrumentedSpmv::with_format`])
    /// for one-off use.
    sell: Option<std::borrow::Cow<'a, SellMatrix>>,
    injector: &'a dyn FaultInjector,
    checksum: Option<ColumnChecksum>,
    applies: AtomicUsize,
    events: Mutex<Vec<ChecksumEvent>>,
    /// Stamped on sites so campaign predicates can address nested solves.
    pub outer_iteration: usize,
    /// Stamped on sites (inner-solve ordinal).
    pub inner_solve: usize,
}

impl<'a> InstrumentedSpmv<'a> {
    /// Wraps `a` with injection through `injector`.
    pub fn new(a: &'a CsrMatrix, injector: &'a dyn FaultInjector) -> Self {
        Self {
            a,
            sell: None,
            injector,
            checksum: None,
            applies: AtomicUsize::new(0),
            events: Mutex::new(Vec::new()),
            outer_iteration: 0,
            inner_solve: 0,
        }
    }

    /// Applies the product through the chosen storage engine (`Auto`
    /// resolves via [`sdc_sparse::auto_format`]). Checksum auditing and
    /// fault sites are unchanged — only the kernel layout differs.
    pub fn with_format(mut self, format: SparseFormat) -> Self {
        self.sell = match format.resolve(self.a) {
            SparseFormat::Sell => Some(std::borrow::Cow::Owned(SellMatrix::from_csr(self.a))),
            _ => None,
        };
        self
    }

    /// Applies the product through a prebuilt SELL engine, so a loop
    /// wrapping the same matrix with many injectors converts once.
    pub fn with_sell(mut self, sell: &'a SellMatrix) -> Self {
        self.sell = Some(std::borrow::Cow::Borrowed(sell));
        self
    }

    /// The engine the product currently runs on (`Csr` or `Sell`).
    pub fn format(&self) -> SparseFormat {
        if self.sell.is_some() {
            SparseFormat::Sell
        } else {
            SparseFormat::Csr
        }
    }

    /// Arms the column-checksum audit with the given rounding tolerance.
    pub fn with_checksum(mut self, tol_factor: f64) -> Self {
        self.checksum = Some(ColumnChecksum::new(self.a, tol_factor));
        self
    }

    /// Number of applies performed.
    pub fn applies(&self) -> usize {
        self.applies.load(Ordering::Relaxed)
    }

    /// Checksum violations recorded so far.
    pub fn checksum_events(&self) -> Vec<ChecksumEvent> {
        self.events.lock().clone()
    }
}

impl<'a> LinearOperator for InstrumentedSpmv<'a> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let ordinal = self.applies.fetch_add(1, Ordering::Relaxed) + 1;
        match &self.sell {
            Some(s) => s.par_spmv(x, y),
            None => self.a.par_spmv(x, y),
        }
        // Element-granular corruption opportunity.
        for (row, yr) in y.iter_mut().enumerate() {
            let site = Site {
                kernel: Kernel::SpMv,
                outer_iteration: self.outer_iteration,
                inner_solve: self.inner_solve,
                inner_iteration: ordinal,
                loop_index: row + 1,
            };
            *yr = self.injector.corrupt(site, *yr);
        }
        if let Some(cs) = &self.checksum {
            let outcome = cs.verify(x, y);
            if !outcome.passed() {
                self.events.lock().push(ChecksumEvent { apply_ordinal: ordinal, outcome });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmres::{gmres_solve_instrumented, GmresConfig, SiteContext};
    use sdc_faults::trigger::LoopPosition;
    use sdc_faults::{FaultModel, NoFaults, SingleFaultInjector, SitePredicate, Trigger};
    use sdc_sparse::gallery;

    fn b_for(a: &CsrMatrix) -> Vec<f64> {
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        b
    }

    /// Predicate matching one SpMV element at one apply ordinal.
    fn spmv_site(apply: usize, row: usize) -> SitePredicate {
        SitePredicate {
            kernel: Some(Kernel::SpMv),
            outer_iteration: None,
            inner_solve: None,
            inner_iteration: Some(apply),
            loop_position: LoopPosition::Index(row + 1),
        }
    }

    #[test]
    fn identity_wrapper_matches_raw_spmv() {
        let a = gallery::poisson2d(10);
        let op = InstrumentedSpmv::new(&a, &NoFaults);
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y1 = vec![0.0; 100];
        let mut y2 = vec![0.0; 100];
        op.apply(&x, &mut y1);
        a.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(op.applies(), 1);
    }

    #[test]
    fn sell_format_wrapper_matches_csr_bitwise() {
        let a = gallery::poisson2d(10);
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let csr_op = InstrumentedSpmv::new(&a, &NoFaults).with_format(SparseFormat::Csr);
        let sell_op = InstrumentedSpmv::new(&a, &NoFaults).with_format(SparseFormat::Sell);
        assert_eq!(csr_op.format(), SparseFormat::Csr);
        assert_eq!(sell_op.format(), SparseFormat::Sell);
        let mut y1 = vec![0.0; 100];
        let mut y2 = vec![0.0; 100];
        csr_op.apply(&x, &mut y1);
        sell_op.apply(&x, &mut y2);
        assert!(y1.iter().zip(&y2).all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn checksum_still_catches_faults_through_sell() {
        let a = gallery::poisson2d(10);
        let inj =
            SingleFaultInjector::new(FaultModel::Offset(5.0), Trigger::once(spmv_site(4, 37)));
        let op =
            InstrumentedSpmv::new(&a, &inj).with_format(SparseFormat::Sell).with_checksum(1e-12);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-9, max_iters: 300, ..Default::default() };
        let (_, _) =
            gmres_solve_instrumented(&op, &b, None, &cfg, &NoFaults, SiteContext::default());
        assert_eq!(inj.fired_count(), 1);
        assert_eq!(op.checksum_events().len(), 1);
        assert_eq!(op.checksum_events()[0].apply_ordinal, 4);
    }

    #[test]
    fn fault_free_solve_has_no_checksum_events() {
        let a = gallery::poisson2d(10);
        let op = InstrumentedSpmv::new(&a, &NoFaults).with_checksum(1e-12);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-9, max_iters: 300, ..Default::default() };
        let (_, rep) =
            gmres_solve_instrumented(&op, &b, None, &cfg, &NoFaults, SiteContext::default());
        assert!(rep.outcome.is_converged());
        assert!(op.checksum_events().is_empty(), "false positives: {:?}", op.checksum_events());
    }

    #[test]
    fn injected_spmv_fault_is_caught_by_checksum() {
        let a = gallery::poisson2d(10);
        let inj =
            SingleFaultInjector::new(FaultModel::Offset(5.0), Trigger::once(spmv_site(4, 37)));
        let op = InstrumentedSpmv::new(&a, &inj).with_checksum(1e-12);
        let b = b_for(&a);
        let cfg = GmresConfig { tol: 1e-9, max_iters: 300, ..Default::default() };
        let (_, _) =
            gmres_solve_instrumented(&op, &b, None, &cfg, &NoFaults, SiteContext::default());
        assert_eq!(inj.fired_count(), 1);
        let events = op.checksum_events();
        assert_eq!(events.len(), 1, "exactly the faulted apply must be flagged");
        assert_eq!(events[0].apply_ordinal, 4);
    }

    #[test]
    fn spmv_fault_invisible_to_hessenberg_bound_when_small() {
        // A modest SpMV corruption changes h values but stays within the
        // Eq.-3 bound — the checksum sees it, the bound detector cannot.
        // (The complementary blind spots are the point of the comparison.)
        use crate::detector::{DetectorResponse, SdcDetector};
        let a = gallery::poisson2d(10);
        let inj =
            SingleFaultInjector::new(FaultModel::Offset(0.5), Trigger::once(spmv_site(3, 10)));
        let op = InstrumentedSpmv::new(&a, &inj).with_checksum(1e-12);
        let b = b_for(&a);
        let cfg = GmresConfig {
            tol: 1e-9,
            max_iters: 300,
            detector: Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::Record)),
            ..Default::default()
        };
        let (_, rep) =
            gmres_solve_instrumented(&op, &b, None, &cfg, &NoFaults, SiteContext::default());
        assert_eq!(inj.fired_count(), 1);
        assert!(rep.detector_events.is_empty(), "bound detector must not see an in-bound fault");
        assert_eq!(op.checksum_events().len(), 1, "checksum must see it");
    }

    #[test]
    fn huge_spmv_fault_seen_by_both() {
        use crate::detector::{DetectorResponse, SdcDetector};
        let a = gallery::poisson2d(10);
        let inj =
            SingleFaultInjector::new(FaultModel::SetValue(1e120), Trigger::once(spmv_site(2, 50)));
        let op = InstrumentedSpmv::new(&a, &inj).with_checksum(1e-12);
        let b = b_for(&a);
        let cfg = GmresConfig {
            tol: 1e-9,
            max_iters: 300,
            detector: Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::Record)),
            ..Default::default()
        };
        let (_, rep) =
            gmres_solve_instrumented(&op, &b, None, &cfg, &NoFaults, SiteContext::default());
        assert!(!rep.detector_events.is_empty(), "1e120 in v drives |h| past the bound");
        assert_eq!(op.checksum_events().len(), 1);
    }
}

//! FT-GMRES — the fault-tolerant inner-outer iteration of §VI.
//!
//! The outer solver is [Flexible GMRES](crate::fgmres) running reliably;
//! the preconditioner application (Algorithm 2, line 4) is an entire GMRES
//! solve running **unreliably** — inside the sandbox model of §IV, with
//! fault injection wired into its orthogonalization kernels. Faults in the
//! inner solve are "rolled forward" through, not rolled back: the outer
//! iteration treats whatever the inner solve returns as just another
//! preconditioner.
//!
//! The sandbox promises the inner solve returns *something* in *finite
//! time*. Concretely:
//!
//! * the inner solve runs under `catch_unwind`, so a panic (hard fault)
//!   becomes a reportable event, and
//! * its result is validated by the reliable outer layer (finite entries);
//!   rejected results are replaced by the unpreconditioned direction
//!   `z = q` — the cheapest correct preconditioner.

use crate::detector::SdcDetector;
use crate::fgmres::{fgmres_solve, FgmresConfig, FlexiblePreconditioner, PrecondReport};
use crate::gmres::{gmres_solve_instrumented, GmresConfig, SiteContext};
use crate::operator::LinearOperator;
use crate::ortho::OrthoStrategy;
use crate::precond::{BuiltPrecond, FaultedPrecond};
use crate::telemetry::{SolveOutcome, SolveReport};
use sdc_dense::lstsq::LstsqPolicy;
use sdc_faults::{FaultInjector, NoFaults};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How the reliable outer layer validates inner-solve output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerValidation {
    /// Accept anything (the raw sandbox contract only).
    None,
    /// Reject non-finite results and fall back to `z = q`.
    RejectNonFinite,
}

/// FT-GMRES configuration.
#[derive(Clone, Copy, Debug)]
pub struct FtGmresConfig {
    /// Outer (reliable) solver settings.
    pub outer: FgmresConfig,
    /// Iterations each inner solve performs (25 in the paper's
    /// experiments). The inner solver runs in fixed-iteration mode.
    pub inner_iters: usize,
    /// Inner orthogonalization variant.
    pub inner_ortho: OrthoStrategy,
    /// Inner projected least-squares policy (§VI-D ablations).
    pub inner_lsq_policy: LstsqPolicy,
    /// The inner solve's SDC detector (None = undetected baseline).
    pub inner_detector: Option<SdcDetector>,
    /// Outer validation of inner results.
    pub validation: InnerValidation,
}

impl Default for FtGmresConfig {
    fn default() -> Self {
        Self {
            outer: FgmresConfig::default(),
            inner_iters: 25,
            inner_ortho: OrthoStrategy::Mgs,
            inner_lsq_policy: LstsqPolicy::Standard,
            inner_detector: None,
            validation: InnerValidation::RejectNonFinite,
        }
    }
}

/// The unreliable inner solve, packaged as a flexible preconditioner.
pub struct InnerGmresPrecond<'a, A: LinearOperator + ?Sized> {
    a: &'a A,
    cfg: GmresConfig,
    injector: &'a dyn FaultInjector,
    validation: InnerValidation,
}

impl<'a, A: LinearOperator + ?Sized> InnerGmresPrecond<'a, A> {
    /// Builds the inner-solve preconditioner from an FT-GMRES config.
    pub fn new(a: &'a A, ft: &FtGmresConfig, injector: &'a dyn FaultInjector) -> Self {
        let cfg = GmresConfig {
            tol: 0.0, // fixed-iteration mode: run all inner iterations
            max_iters: ft.inner_iters,
            restart: None,
            ortho: ft.inner_ortho,
            lsq_policy: ft.inner_lsq_policy,
            detector: ft.inner_detector,
            breakdown_rel: 1e-13,
            max_detector_restarts: 4,
        };
        Self { a, cfg, injector, validation: ft.validation }
    }
}

impl<'a, A: LinearOperator + ?Sized> FlexiblePreconditioner for InnerGmresPrecond<'a, A> {
    fn apply_flexible(
        &mut self,
        outer_iteration: usize,
        q: &[f64],
        z: &mut [f64],
    ) -> PrecondReport {
        let mut preport = PrecondReport::default();
        // ---- Unreliable guest phase: solve A z = q approximately.
        // catch_unwind converts a guest panic into a reportable event
        // (the sandbox's "returns something" promise).
        let ctx = SiteContext { outer_iteration, inner_solve: outer_iteration };
        let injections_before = self.injector.records().len();
        let guest = catch_unwind(AssertUnwindSafe(|| {
            gmres_solve_instrumented(self.a, q, None, &self.cfg, self.injector, ctx)
        }));

        match guest {
            Ok((zg, inner_rep)) => {
                preport.inner_iterations = inner_rep.iterations;
                preport.detector_events = inner_rep.detector_events;
                preport.detector_restarts = inner_rep.detector_restarts;
                preport.injections =
                    self.injector.records().into_iter().skip(injections_before).collect();
                if let SolveOutcome::Halted(v) = inner_rep.outcome {
                    preport.halted = Some(v);
                    // Hand back the (loud) fallback anyway so the caller
                    // has defined data if it chooses to continue.
                    z.copy_from_slice(q);
                    return preport;
                }
                // ---- Reliable host phase: validate before use.
                let ok = match self.validation {
                    InnerValidation::None => true,
                    InnerValidation::RejectNonFinite => sdc_dense::all_finite(&zg),
                };
                if ok {
                    z.copy_from_slice(&zg);
                } else {
                    preport.rejected = true;
                    z.copy_from_slice(q);
                }
            }
            Err(_) => {
                // Guest crashed: sandbox converts the hard fault into a
                // rejection; the solve continues with z = q.
                preport.rejected = true;
                z.copy_from_slice(q);
            }
        }
        preport
    }

    fn name(&self) -> &'static str {
        "inner-gmres (unreliable)"
    }
}

/// Solves `A x = b` with FT-GMRES, fault-free.
pub fn ftgmres_solve<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &FtGmresConfig,
) -> (Vec<f64>, SolveReport) {
    ftgmres_solve_instrumented(a, b, x0, cfg, &NoFaults)
}

/// Solves `A x = b` with FT-GMRES, injecting faults into the inner solves
/// via `injector`. This is the paper's experimental configuration.
pub fn ftgmres_solve_instrumented<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &FtGmresConfig,
    injector: &dyn FaultInjector,
) -> (Vec<f64>, SolveReport) {
    let mut precond = InnerGmresPrecond::new(a, cfg, injector);
    fgmres_solve(a, b, x0, &cfg.outer, &mut precond)
}

/// The unreliable inner solve with a *right-preconditioned* operator:
/// the inner GMRES runs on `B = A·M⁻¹` (both the operator applies and
/// the orthogonalization passing through the fault injector — `M` is the
/// sequel paper's opaque preconditioner, corruptible via
/// [`FaultedPrecond`]), and the returned direction is `z = M⁻¹u`, mapped
/// through the *clean* application (stored-factor corruption, being
/// persistent, still applies). The outer FGMRES remains reliable and
/// unpreconditioned — the residual identity `b − A x = b − B u` keeps
/// its convergence checks and detector bounds valid; see
/// [`crate::precond`].
pub struct PrecondInnerGmres<'a, A: LinearOperator + ?Sized> {
    a: &'a A,
    cfg: GmresConfig,
    precond: FaultedPrecond<'a>,
    injector: &'a dyn FaultInjector,
    validation: InnerValidation,
}

impl<'a, A: LinearOperator + ?Sized> PrecondInnerGmres<'a, A> {
    /// Builds the preconditioned inner solve from an FT-GMRES config.
    pub fn new(
        a: &'a A,
        ft: &FtGmresConfig,
        precond: &'a BuiltPrecond,
        injector: &'a dyn FaultInjector,
    ) -> Self {
        let cfg = GmresConfig {
            tol: 0.0,
            max_iters: ft.inner_iters,
            restart: None,
            ortho: ft.inner_ortho,
            lsq_policy: ft.inner_lsq_policy,
            detector: ft.inner_detector,
            breakdown_rel: 1e-13,
            max_detector_restarts: 4,
        };
        Self {
            a,
            cfg,
            precond: FaultedPrecond::new(precond, injector),
            injector,
            validation: ft.validation,
        }
    }
}

impl<'a, A: LinearOperator + ?Sized> FlexiblePreconditioner for PrecondInnerGmres<'a, A> {
    fn apply_flexible(
        &mut self,
        outer_iteration: usize,
        q: &[f64],
        z: &mut [f64],
    ) -> PrecondReport {
        let mut preport = PrecondReport::default();
        let n = self.a.nrows();
        let ctx = SiteContext { outer_iteration, inner_solve: outer_iteration };
        let injections_before = self.injector.records().len();

        // Apply-ordinal counter for transient preconditioner faults.
        // Atomic only because `FnOperator` requires `Fn + Sync`; the
        // inner GMRES applies the operator strictly sequentially, so the
        // ordinal sequence is deterministic.
        let applies = std::sync::atomic::AtomicUsize::new(0);
        let a = self.a;
        let precond = &self.precond;
        let op = crate::operator::FnOperator::square(n, |u: &[f64], y: &mut [f64]| {
            let ordinal = applies.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            let mut m_u = vec![0.0; n];
            precond.solve_faulted(u, &mut m_u, outer_iteration, ordinal);
            a.apply(&m_u, y);
        });

        let guest = catch_unwind(AssertUnwindSafe(|| {
            gmres_solve_instrumented(&op, q, None, &self.cfg, self.injector, ctx)
        }));

        match guest {
            Ok((u, inner_rep)) => {
                preport.inner_iterations = inner_rep.iterations;
                preport.detector_events = inner_rep.detector_events;
                preport.detector_restarts = inner_rep.detector_restarts;
                preport.injections =
                    self.injector.records().into_iter().skip(injections_before).collect();
                if let SolveOutcome::Halted(v) = inner_rep.outcome {
                    preport.halted = Some(v);
                    z.copy_from_slice(q);
                    return preport;
                }
                // Reliable host phase: map u back through the clean
                // application, then validate the direction before use.
                self.precond.solve_clean(&u, z);
                let ok = match self.validation {
                    InnerValidation::None => true,
                    InnerValidation::RejectNonFinite => sdc_dense::all_finite(z),
                };
                if !ok {
                    preport.rejected = true;
                    z.copy_from_slice(q);
                }
            }
            Err(_) => {
                preport.rejected = true;
                z.copy_from_slice(q);
            }
        }
        preport
    }

    fn name(&self) -> &'static str {
        "inner-gmres (unreliable, right-preconditioned)"
    }
}

/// FT-GMRES with a right-preconditioned inner solve and the
/// opaque-preconditioner fault surface armed. With
/// [`PrecondKind::None`](crate::precond::PrecondKind::None) this *is*
/// [`ftgmres_solve_instrumented`], bit for bit.
pub fn ftgmres_solve_precond<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &FtGmresConfig,
    precond: &BuiltPrecond,
    injector: &dyn FaultInjector,
) -> (Vec<f64>, SolveReport) {
    if precond.is_none() {
        return ftgmres_solve_instrumented(a, b, x0, cfg, injector);
    }
    let mut p = PrecondInnerGmres::new(a, cfg, precond, injector);
    fgmres_solve(a, b, x0, &cfg.outer, &mut p)
}

/// The fully sandboxed inner solve: each guest runs on its own thread
/// under a wall-clock budget, realizing the complete §IV contract — the
/// host "can force guest code to stop within a predefined finite time",
/// converting hangs (e.g. livelocked guest code) into rejections.
///
/// Requires owned (`'static`) captures, hence the `Arc`s. Generic over
/// the operator so sandboxed inner solves run on any storage format
/// (CSR, SELL-C-σ, [`sdc_sparse::FormatMatrix`]) or matrix-free operator.
pub struct SandboxedInnerGmres<A: LinearOperator + Send + Sync + 'static = sdc_sparse::CsrMatrix> {
    a: std::sync::Arc<A>,
    cfg: GmresConfig,
    injector: std::sync::Arc<dyn FaultInjector + 'static>,
    sandbox: sdc_faults::SandboxConfig,
    validation: InnerValidation,
}

impl<A: LinearOperator + Send + Sync + 'static> SandboxedInnerGmres<A> {
    /// Builds the sandboxed preconditioner with the given time budget.
    pub fn new(
        a: std::sync::Arc<A>,
        ft: &FtGmresConfig,
        injector: std::sync::Arc<dyn FaultInjector + 'static>,
        budget: std::time::Duration,
    ) -> Self {
        let cfg = GmresConfig {
            tol: 0.0,
            max_iters: ft.inner_iters,
            restart: None,
            ortho: ft.inner_ortho,
            lsq_policy: ft.inner_lsq_policy,
            detector: ft.inner_detector,
            breakdown_rel: 1e-13,
            max_detector_restarts: 4,
        };
        Self {
            a,
            cfg,
            injector,
            sandbox: sdc_faults::SandboxConfig { time_budget: Some(budget) },
            validation: ft.validation,
        }
    }
}

impl<A: LinearOperator + Send + Sync + 'static> FlexiblePreconditioner for SandboxedInnerGmres<A> {
    fn apply_flexible(
        &mut self,
        outer_iteration: usize,
        q: &[f64],
        z: &mut [f64],
    ) -> PrecondReport {
        let mut preport = PrecondReport::default();
        let a = std::sync::Arc::clone(&self.a);
        let injector = std::sync::Arc::clone(&self.injector);
        let cfg = self.cfg;
        let rhs = q.to_vec();
        let ctx = SiteContext { outer_iteration, inner_solve: outer_iteration };
        let injections_before = self.injector.records().len();

        let guest = sdc_faults::run_sandboxed(self.sandbox, move || {
            gmres_solve_instrumented(a.as_ref(), &rhs, None, &cfg, injector.as_ref(), ctx)
        });

        match guest {
            Ok((zg, inner_rep)) => {
                preport.inner_iterations = inner_rep.iterations;
                preport.detector_events = inner_rep.detector_events;
                preport.detector_restarts = inner_rep.detector_restarts;
                preport.injections =
                    self.injector.records().into_iter().skip(injections_before).collect();
                if let SolveOutcome::Halted(v) = inner_rep.outcome {
                    preport.halted = Some(v);
                    z.copy_from_slice(q);
                    return preport;
                }
                let ok = match self.validation {
                    InnerValidation::None => true,
                    InnerValidation::RejectNonFinite => sdc_dense::all_finite(&zg),
                };
                if ok {
                    z.copy_from_slice(&zg);
                } else {
                    preport.rejected = true;
                    z.copy_from_slice(q);
                }
            }
            Err(_timeout_or_panic) => {
                // Hung or crashed guest: the host regains control within
                // its budget and substitutes the identity application.
                preport.rejected = true;
                z.copy_from_slice(q);
            }
        }
        preport
    }

    fn name(&self) -> &'static str {
        "inner-gmres (sandboxed thread, time budget)"
    }
}

/// FT-GMRES with thread-isolated, time-budgeted inner solves.
pub fn ftgmres_solve_sandboxed<A: LinearOperator + Send + Sync + 'static>(
    a: std::sync::Arc<A>,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &FtGmresConfig,
    injector: std::sync::Arc<dyn FaultInjector + 'static>,
    budget: std::time::Duration,
) -> (Vec<f64>, SolveReport) {
    let a_ref = std::sync::Arc::clone(&a);
    let mut precond = SandboxedInnerGmres::new(a, cfg, injector, budget);
    fgmres_solve(a_ref.as_ref(), b, x0, &cfg.outer, &mut precond)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorResponse;
    use sdc_dense::vector;
    use sdc_faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
    use sdc_faults::trigger::LoopPosition;
    use sdc_faults::{FaultModel, SingleFaultInjector, SitePredicate, Trigger};
    use sdc_sparse::gallery;

    fn b_for(a: &sdc_sparse::CsrMatrix) -> Vec<f64> {
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        b
    }

    fn poisson_cfg() -> FtGmresConfig {
        FtGmresConfig {
            outer: FgmresConfig { tol: 1e-8, max_outer: 40, ..Default::default() },
            inner_iters: 10,
            ..Default::default()
        }
    }

    fn check_solution(a: &sdc_sparse::CsrMatrix, b: &[f64], x: &[f64], tol: f64) {
        let mut r = vec![0.0; b.len()];
        crate::operator::residual(a, b, x, &mut r);
        let rel = vector::nrm2(&r) / vector::nrm2(b);
        assert!(rel <= tol, "relative residual {rel} > {tol}");
    }

    #[test]
    fn det_trace_is_reproducible_and_covers_every_layer() {
        use crate::precond::PrecondKind;
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg = poisson_cfg();
        let precond = PrecondKind::Jacobi.build(&a).unwrap();
        let run = || {
            let sink = std::sync::Arc::new(sdc_obs::trace::TraceSink::new());
            let inj = SingleFaultInjector::new(
                FaultModel::CLASS1_HUGE,
                Trigger::once(SitePredicate::mgs_site(1, 3, LoopPosition::First)),
            );
            sdc_obs::with_local(sink.clone(), || {
                ftgmres_solve_precond(&a, &b, None, &cfg, &precond, &inj);
            });
            sink.det_bytes()
        };
        let t1 = run();
        let t2 = run();
        assert_eq!(t1, t2, "det trace must be a pure function of the spec");
        for ev in [
            "gmres.iter",
            "gmres.done",
            "fgmres.outer",
            "fgmres.done",
            "fault.inject",
            "precond.apply",
        ] {
            assert!(t1.contains(&format!("\"ev\":\"{ev}\"")), "missing {ev} in det trace");
        }
        // Exactly one committed injection in the trace.
        assert_eq!(t1.matches("\"ev\":\"fault.inject\"").count(), 1);
    }

    #[test]
    fn fault_free_nested_solve_converges() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = poisson_cfg();
        let (x, rep) = ftgmres_solve(&a, &b, None, &cfg);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        check_solution(&a, &b, &x, 1e-7);
        assert!(rep.total_inner_iterations >= rep.iterations * cfg.inner_iters);
        assert_eq!(rep.inner_rejections, 0);
        assert_eq!(rep.injections.len(), 0);
    }

    #[test]
    fn runs_through_huge_fault_without_detector() {
        // The paper's headline: FT-GMRES "runs through" SDC of almost any
        // magnitude in the orthogonalization phase.
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = poisson_cfg();
        let (_, ff) = ftgmres_solve(&a, &b, None, &cfg);
        for class in FaultClass::all() {
            let point = CampaignPoint {
                aggregate_iteration: 12, // inner solve 2, iteration 2
                inner_per_outer: cfg.inner_iters,
                class,
                position: MgsPosition::First,
            };
            let inj = point.injector();
            let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
            assert!(rep.outcome.is_converged(), "{class:?}: {:?}", rep.outcome);
            assert_eq!(rep.injections.len(), 1, "{class:?}: exactly one SDC");
            check_solution(&a, &b, &x, 1e-7);
            // Bounded penalty: a handful of extra outer iterations at most.
            assert!(
                rep.iterations <= ff.iterations + 6,
                "{class:?}: {} vs failure-free {}",
                rep.iterations,
                ff.iterations
            );
        }
    }

    #[test]
    fn detector_catches_huge_fault_and_restart_shrinks_penalty() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let mut cfg = poisson_cfg();
        let (_, ff) = ftgmres_solve(&a, &b, None, &cfg);

        cfg.inner_detector =
            Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner));
        let point = CampaignPoint {
            aggregate_iteration: 3,
            inner_per_outer: cfg.inner_iters,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        let inj = point.injector();
        let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
        assert!(rep.outcome.is_converged());
        assert!(rep.detected_anything(), "class-1 fault must be detected");
        assert_eq!(rep.detector_restarts, 1);
        check_solution(&a, &b, &x, 1e-7);
        assert!(
            rep.iterations <= ff.iterations + 1,
            "with detector the penalty is at most one outer iteration: {} vs {}",
            rep.iterations,
            ff.iterations
        );
    }

    #[test]
    fn class2_and_class3_faults_are_undetectable_but_survivable() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let mut cfg = poisson_cfg();
        cfg.inner_detector =
            Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner));
        for class in [FaultClass::Slight, FaultClass::Tiny] {
            let point = CampaignPoint {
                aggregate_iteration: 7,
                inner_per_outer: cfg.inner_iters,
                class,
                position: MgsPosition::Last,
            };
            let inj = point.injector();
            let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
            assert!(rep.outcome.is_converged(), "{class:?}");
            assert!(
                rep.detector_events.is_empty(),
                "{class:?} must be invisible to the bound detector"
            );
            assert_eq!(rep.detector_restarts, 0);
            check_solution(&a, &b, &x, 1e-7);
        }
    }

    #[test]
    fn nan_inner_result_is_rejected_by_reliable_validation() {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg = poisson_cfg();
        // Inject NaN into an orthogonalization coefficient: without a
        // detector the inner solve returns a NaN-tainted iterate, which
        // the outer validation must reject.
        let inj = SingleFaultInjector::new(
            FaultModel::SetNan,
            Trigger::once(SitePredicate::mgs_site(1, 2, LoopPosition::First)),
        );
        let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert!(rep.inner_rejections >= 1, "NaN result must be rejected");
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn panicking_guest_becomes_rejection_not_crash() {
        use sdc_faults::Site;
        // An injector that panics at its target site — a hard fault inside
        // the unreliable guest phase. The injector only runs inside inner
        // solves (the reliable outer phase uses NoFaults), so the panic is
        // guaranteed to strike sandboxed code.
        struct CrashingInjector;
        impl sdc_faults::FaultInjector for CrashingInjector {
            fn corrupt(&self, site: Site, value: f64) -> f64 {
                if site.inner_solve == 2 && site.inner_iteration == 3 && site.loop_index == 1 {
                    panic!("simulated guest crash");
                }
                value
            }
        }
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg = FtGmresConfig {
            outer: FgmresConfig { tol: 1e-8, max_outer: 30, ..Default::default() },
            inner_iters: 8,
            ..Default::default()
        };
        let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &CrashingInjector);
        // The guest's hard fault was converted into a rejection; the outer
        // solve proceeded and converged.
        assert!(rep.inner_rejections >= 1, "crash must be converted to a rejection");
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert!(x.iter().all(|v| v.is_finite()));
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn sandboxed_solve_matches_in_process_solve() {
        use std::sync::Arc;
        let a = Arc::new(gallery::poisson2d(10));
        let b = b_for(&a);
        let cfg = poisson_cfg();
        let (x1, r1) = ftgmres_solve(a.as_ref(), &b, None, &cfg);
        let (x2, r2) = ftgmres_solve_sandboxed(
            Arc::clone(&a),
            &b,
            None,
            &cfg,
            Arc::new(sdc_faults::NoFaults),
            std::time::Duration::from_secs(60),
        );
        assert_eq!(r1.iterations, r2.iterations);
        for i in 0..x1.len() {
            assert_eq!(x1[i].to_bits(), x2[i].to_bits(), "x[{i}]");
        }
        assert!(r2.outcome.is_converged());
    }

    #[test]
    fn hung_guest_is_stopped_within_budget() {
        use std::sync::Arc;
        // An injector that hangs the guest at a specific site: the host
        // must regain control within its time budget and continue.
        struct HangingInjector;
        impl sdc_faults::FaultInjector for HangingInjector {
            fn corrupt(&self, site: sdc_faults::Site, value: f64) -> f64 {
                if site.inner_solve == 2 && site.inner_iteration == 1 && site.loop_index == 1 {
                    // Sleep far beyond the budget exactly once per process
                    // (the thread is detached afterwards).
                    std::thread::sleep(std::time::Duration::from_secs(30));
                }
                value
            }
        }
        let a = Arc::new(gallery::poisson2d(8));
        let b = b_for(&a);
        let cfg = FtGmresConfig {
            outer: FgmresConfig { tol: 1e-8, max_outer: 40, ..Default::default() },
            inner_iters: 6,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let (x, rep) = ftgmres_solve_sandboxed(
            Arc::clone(&a),
            &b,
            None,
            &cfg,
            Arc::new(HangingInjector),
            std::time::Duration::from_millis(200),
        );
        assert!(rep.inner_rejections >= 1, "hung guest must be rejected");
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        check_solution(&a, &b, &x, 1e-7);
        // The whole solve must not have waited for the 30s sleep.
        assert!(t0.elapsed() < std::time::Duration::from_secs(15), "host failed to move on");
    }

    #[test]
    fn detector_halt_propagates_loudly() {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let mut cfg = poisson_cfg();
        cfg.inner_detector = Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::Halt));
        let point = CampaignPoint {
            aggregate_iteration: 5,
            inner_per_outer: cfg.inner_iters,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        let inj = point.injector();
        let (_, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
        assert!(matches!(rep.outcome, SolveOutcome::Halted(_)), "{:?}", rep.outcome);
    }

    #[test]
    fn precond_none_is_plain_ftgmres_bit_for_bit() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = poisson_cfg();
        let (x1, r1) = ftgmres_solve(&a, &b, None, &cfg);
        let (x2, r2) =
            ftgmres_solve_precond(&a, &b, None, &cfg, &BuiltPrecond::None, &sdc_faults::NoFaults);
        assert_eq!(r1.iterations, r2.iterations);
        for i in 0..x1.len() {
            assert_eq!(x1[i].to_bits(), x2[i].to_bits(), "x[{i}]");
        }
    }

    #[test]
    fn preconditioned_inner_solves_cut_outer_iterations() {
        use crate::precond::PrecondKind;
        let a = gallery::poisson2d(16);
        let b = b_for(&a);
        let cfg = FtGmresConfig {
            outer: FgmresConfig { tol: 1e-8, max_outer: 60, ..Default::default() },
            inner_iters: 5,
            ..Default::default()
        };
        let (_, plain) = ftgmres_solve(&a, &b, None, &cfg);
        for kind in [PrecondKind::Jacobi, PrecondKind::Ilu0, PrecondKind::Chebyshev] {
            let p = kind.build(&a).unwrap();
            let (x, rep) = ftgmres_solve_precond(&a, &b, None, &cfg, &p, &sdc_faults::NoFaults);
            assert!(rep.outcome.is_converged(), "{kind}: {:?}", rep.outcome);
            check_solution(&a, &b, &x, 1e-7);
            assert!(
                rep.iterations <= plain.iterations,
                "{kind}: {} vs plain {}",
                rep.iterations,
                plain.iterations
            );
            if kind == PrecondKind::Chebyshev {
                assert!(
                    rep.iterations * 2 <= plain.iterations,
                    "{kind} must at least halve outer iterations: {} vs {}",
                    rep.iterations,
                    plain.iterations
                );
            }
        }
    }

    #[test]
    fn opaque_precond_transient_fault_is_survived() {
        use crate::precond::PrecondKind;
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = poisson_cfg();
        for kind in [PrecondKind::Jacobi, PrecondKind::Chebyshev] {
            let p = kind.build(&a).unwrap();
            // Aggregate 3 = inner solve 1, apply 3: guaranteed reached
            // even when the preconditioned solve converges in one outer
            // iteration.
            let point = CampaignPoint {
                aggregate_iteration: 3,
                inner_per_outer: cfg.inner_iters,
                class: FaultClass::Huge,
                position: MgsPosition::First,
            };
            let inj = point.injector_precond_apply(a.nrows());
            let (x, rep) = ftgmres_solve_precond(&a, &b, None, &cfg, &p, &inj);
            assert!(rep.outcome.is_converged(), "{kind}: {:?}", rep.outcome);
            assert_eq!(rep.injections.len(), 1, "{kind}: exactly one SDC");
            check_solution(&a, &b, &x, 1e-7);
        }
    }

    #[test]
    fn opaque_precond_stored_factor_fault_is_survived_and_detected() {
        use crate::precond::PrecondKind;
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let p = PrecondKind::Ilu0.build(&a).unwrap();
        let mut cfg = poisson_cfg();
        let point = CampaignPoint {
            aggregate_iteration: 12,
            inner_per_outer: cfg.inner_iters,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        let nnz = match &p {
            BuiltPrecond::Ilu0(f) => f.factor_data().nnz(),
            _ => unreachable!(),
        };
        // Undetected: the corrupted factors poison inner directions, but
        // the reliable outer layer still converges to the true solution.
        let inj = point.injector_precond_factor(nnz);
        let (x, rep) = ftgmres_solve_precond(&a, &b, None, &cfg, &p, &inj);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert_eq!(rep.injections.len(), 1);
        check_solution(&a, &b, &x, 1e-7);

        // Detected: the huge factor inflates an inner Hessenberg entry
        // beyond the preconditioned bound.
        cfg.inner_detector =
            Some(SdcDetector::with_preconditioned_bound(&a, &p, DetectorResponse::Record));
        let inj = point.injector_precond_factor(nnz);
        let (x, rep) = ftgmres_solve_precond(&a, &b, None, &cfg, &p, &inj);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        assert!(rep.detected_anything(), "huge stored-factor fault must trip the bound");
        check_solution(&a, &b, &x, 1e-7);
    }

    #[test]
    fn preconditioned_detector_never_fires_fault_free() {
        use crate::precond::PrecondKind;
        let a = gallery::poisson2d(12);
        let b = b_for(&a);
        for kind in [PrecondKind::Jacobi, PrecondKind::Ilu0, PrecondKind::Chebyshev] {
            let p = kind.build(&a).unwrap();
            let mut cfg = poisson_cfg();
            cfg.inner_detector =
                Some(SdcDetector::with_preconditioned_bound(&a, &p, DetectorResponse::Halt));
            let (x, rep) = ftgmres_solve_precond(&a, &b, None, &cfg, &p, &sdc_faults::NoFaults);
            assert!(rep.outcome.is_converged(), "{kind}: false positive: {:?}", rep.outcome);
            assert!(rep.detector_events.is_empty(), "{kind}");
            check_solution(&a, &b, &x, 1e-7);
        }
    }

    #[test]
    fn nonsymmetric_system_with_faults() {
        let a = gallery::convection_diffusion_2d(8, 2.0, -1.0);
        let b = b_for(&a);
        let cfg = FtGmresConfig {
            outer: FgmresConfig { tol: 1e-8, max_outer: 60, ..Default::default() },
            inner_iters: 12,
            ..Default::default()
        };
        let point = CampaignPoint {
            aggregate_iteration: 14,
            inner_per_outer: 12,
            class: FaultClass::Slight,
            position: MgsPosition::Last,
        };
        let inj = point.injector();
        let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        check_solution(&a, &b, &x, 1e-7);
    }
}

//! Flexible GMRES — Algorithm 2 of the paper.
//!
//! FGMRES lets the preconditioner change every iteration, which is what
//! makes inner-outer iterations (and hence FT-GMRES) possible: a faulty
//! inner solve is just "a different preconditioner". The implementation
//! adds the two reliability features §VI calls out:
//!
//! * **Rank monitoring / trichotomy** (§VI-C): when the subdiagonal
//!   `h_{j+1,j}` vanishes, FGMRES — unlike GMRES — cannot conclude
//!   convergence: `H(1:j,1:j)` may be singular even in exact arithmetic
//!   (Saad, Prop. 2.2). The solver checks the square projected matrix
//!   with the rank-revealing SVD and reports either
//!   [`SolveOutcome::InvariantSubspace`] (converged) or the loud
//!   [`SolveOutcome::RankDeficient`]. Per-iteration `O(j²)` condition
//!   estimates of the triangular factor are kept as telemetry.
//! * **Reliable final verification**: the outer solver re-computes the
//!   true residual `b − A x` reliably before declaring convergence; if
//!   garbage inner results made the recurrence lie, the outer iteration
//!   restarts from the current (reliable) iterate instead of returning a
//!   wrong answer — "the outer solver will never compute the wrong
//!   answer, no matter what the inner solves do".

use crate::detector::Violation;
use crate::operator::{residual, LinearOperator};
use crate::ortho::{orthogonalize, OrthoSiteCtx, OrthoStrategy};
use crate::precond::Preconditioner;
use crate::telemetry::{SolveOutcome, SolveReport};
use sdc_dense::condest::estimate_condition;
use sdc_dense::hessenberg_qr::HessenbergQr;
use sdc_dense::lstsq::{solve_projected, LstsqPolicy};
use sdc_dense::matrix::DenseMatrix;
use sdc_dense::svd::jacobi_svd;
use sdc_dense::vector;
use sdc_faults::{InjectionRecord, NoFaults};

/// One reliable outer (flexible) iteration, after the unreliable inner
/// phase reported back. Deterministic channel.
static EV_OUTER: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "fgmres.outer", channel: sdc_obs::Channel::Det };
/// End of an FGMRES solve, with the reliably verified residual.
static EV_DONE: sdc_obs::Callsite =
    sdc_obs::Callsite { name: "fgmres.done", channel: sdc_obs::Channel::Det };

/// What one application of a flexible preconditioner reports back.
#[derive(Clone, Debug, Default)]
pub struct PrecondReport {
    /// Iterations the inner solve spent (0 for non-iterative
    /// preconditioners).
    pub inner_iterations: usize,
    /// Detector events raised inside the inner solve.
    pub detector_events: Vec<Violation>,
    /// Detector-forced inner restarts.
    pub detector_restarts: usize,
    /// Faults committed inside the inner solve.
    pub injections: Vec<InjectionRecord>,
    /// True if the unreliable result was rejected by reliable validation
    /// and replaced by a fallback.
    pub rejected: bool,
    /// True if the inner solve was halted loudly by its detector — the
    /// outer solver must propagate the loud failure.
    pub halted: Option<Violation>,
}

/// A preconditioner that may differ on every application — the `M_j` of
/// Algorithm 2. Implementations may be full iterative solvers.
pub trait FlexiblePreconditioner {
    /// Computes `z = M_j⁻¹ q` for outer iteration `j` (1-based).
    fn apply_flexible(&mut self, outer_iteration: usize, q: &[f64], z: &mut [f64])
        -> PrecondReport;

    /// Display name for reports.
    fn name(&self) -> &'static str {
        "flexible preconditioner"
    }
}

/// Adapter: any plain [`Preconditioner`] is a (constant) flexible one.
pub struct FixedPrecond<P: Preconditioner>(pub P);

impl<P: Preconditioner> FlexiblePreconditioner for FixedPrecond<P> {
    fn apply_flexible(
        &mut self,
        _outer_iteration: usize,
        q: &[f64],
        z: &mut [f64],
    ) -> PrecondReport {
        self.0.apply(q, z);
        PrecondReport::default()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// FGMRES configuration.
#[derive(Clone, Copy, Debug)]
pub struct FgmresConfig {
    /// Relative residual target.
    pub tol: f64,
    /// Outer iteration budget (across outer restarts).
    pub max_outer: usize,
    /// Outer orthogonalization (reliable; MGS by default).
    pub ortho: OrthoStrategy,
    /// Projected least-squares policy for the outer update coefficients.
    pub lsq_policy: LstsqPolicy,
    /// Happy-breakdown threshold relative to the cycle's initial residual.
    pub breakdown_rel: f64,
    /// Relative singular-value tolerance declaring `H(1:j,1:j)` rank
    /// deficient.
    pub rank_tol: f64,
    /// Safety factor on the reliable final residual check: accept if
    /// `‖b−Ax‖ ≤ final_check_slack · tol · ‖b‖`.
    pub final_check_slack: f64,
    /// Outer restarts allowed when the reliable check rejects a
    /// "converged" iterate.
    pub max_outer_restarts: usize,
}

impl Default for FgmresConfig {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            max_outer: 60,
            ortho: OrthoStrategy::Mgs,
            lsq_policy: LstsqPolicy::Standard,
            breakdown_rel: 1e-13,
            rank_tol: 1e-12,
            final_check_slack: 10.0,
            max_outer_restarts: 3,
        }
    }
}

/// Solves `A x = b` by FGMRES with the given flexible preconditioner.
pub fn fgmres_solve<A, M>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &FgmresConfig,
    precond: &mut M,
) -> (Vec<f64>, SolveReport)
where
    A: LinearOperator + ?Sized,
    M: FlexiblePreconditioner + ?Sized,
{
    let n = a.nrows();
    assert!(a.is_square(), "fgmres: operator must be square");
    assert_eq!(b.len(), n, "fgmres: rhs length");
    // Timing span over the outer flexible iteration; inner `gmres.solve`
    // spans (FT-GMRES inner phases) nest beneath it in span logs.
    static EV_SOLVE: sdc_obs::Callsite =
        sdc_obs::Callsite { name: "fgmres.solve", channel: sdc_obs::Channel::Timing };
    let mut solve_span = sdc_obs::span(&EV_SOLVE);
    if let Some(s) = &mut solve_span {
        s.u64("n", n as u64);
    }
    let mut report = SolveReport::new();
    let mut x = match x0 {
        Some(x0) => x0.to_vec(),
        None => vec![0.0; n],
    };
    let bnorm = vector::nrm2(b);
    if bnorm == 0.0 {
        x.fill(0.0);
        report.outcome = SolveOutcome::Converged;
        report.residual_norm = 0.0;
        report.true_residual_norm = Some(0.0);
        return (x, report);
    }
    let target = cfg.tol * bnorm;

    let mut outer_done = 0usize;
    let mut outer_restarts = 0usize;
    let mut r = vec![0.0; n];
    let mut finished: Option<SolveOutcome> = None;

    'cycles: while finished.is_none() {
        residual(a, b, &x, &mut r);
        let beta = vector::nrm2(&r);
        if report.residual_history.is_empty() {
            report.residual_history.push(beta);
        }
        report.residual_norm = beta;
        if !beta.is_finite() {
            finished = Some(SolveOutcome::NumericalBreakdown("non-finite outer residual".into()));
            break;
        }
        if beta <= target {
            finished = Some(SolveOutcome::Converged);
            report.true_residual_norm = Some(beta);
            break;
        }
        let breakdown_tol = cfg.breakdown_rel * beta;

        let mut v_basis: Vec<Vec<f64>> = Vec::new();
        let mut z_basis: Vec<Vec<f64>> = Vec::new();
        let mut h_cols: Vec<Vec<f64>> = Vec::new();
        let mut q1 = r.clone();
        vector::scal(1.0 / beta, &mut q1);
        v_basis.push(q1);
        let mut hqr = HessenbergQr::new(beta);
        let mut w = vec![0.0; n];
        let mut z = vec![0.0; n];

        while outer_done < cfg.max_outer {
            let j = hqr.k() + 1;
            outer_done += 1;
            report.iterations = outer_done;

            // ---- Unreliable phase: apply the flexible preconditioner.
            let preport = precond.apply_flexible(outer_done, v_basis.last().unwrap(), &mut z);
            report.total_inner_iterations += preport.inner_iterations;
            report.detector_events.extend(preport.detector_events.iter().copied());
            report.detector_restarts += preport.detector_restarts;
            report.injections.extend(preport.injections.iter().copied());
            if preport.rejected {
                report.inner_rejections += 1;
            }
            if let Some(v) = preport.halted {
                finished = Some(SolveOutcome::Halted(v));
                break 'cycles;
            }

            // ---- Reliable phase.
            z_basis.push(z.clone());
            a.apply(&z, &mut w);
            let mut ores = orthogonalize(
                cfg.ortho,
                &v_basis,
                &mut w,
                OrthoSiteCtx { outer_iteration: outer_done, inner_solve: 0, column: j },
                &NoFaults,
                None,
            );

            #[allow(clippy::neg_cmp_op_on_partial_ord)] // a NaN norm must count as breakdown
            if !(ores.vnorm.abs() > breakdown_tol) {
                // The new direction vanished. If the projected matrix
                // including this column is rank deficient, the inner
                // result was useless (e.g. a near-zero vector from a
                // regularized solve of a corrupted system): retry the
                // column once with the unpreconditioned direction z = q
                // before concluding anything — the sandbox model promises
                // nothing about inner results, and the identity
                // preconditioner is always a sound substitute.
                let mut candidate = h_cols.clone();
                let mut hcol = ores.h.clone();
                hcol.push(ores.vnorm);
                candidate.push(hcol);
                let deficient = !square_hessenberg_is_full_rank(&candidate, cfg.rank_tol);
                let q_j = v_basis.last().unwrap().clone();
                let z_was_q = {
                    let zz = z_basis.last().unwrap();
                    zz.iter().zip(q_j.iter()).all(|(a, b)| a == b)
                };
                if deficient && !z_was_q {
                    report.inner_rejections += 1;
                    z_basis.pop();
                    z_basis.push(q_j.clone());
                    z.copy_from_slice(&q_j);
                    a.apply(&z, &mut w);
                    ores = orthogonalize(
                        cfg.ortho,
                        &v_basis,
                        &mut w,
                        OrthoSiteCtx { outer_iteration: outer_done, inner_solve: 0, column: j },
                        &NoFaults,
                        None,
                    );
                }
            }

            let mut hcol = ores.h.clone();
            hcol.push(ores.vnorm);
            h_cols.push(hcol.clone());
            let res_est = hqr.push_column(&hcol);
            report.residual_history.push(res_est);
            report.residual_norm = res_est;
            if sdc_obs::enabled() {
                sdc_obs::Event::new(&EV_OUTER)
                    .u64("outer", outer_done as u64)
                    .f64("res_est", res_est)
                    .f64("h_next", ores.vnorm)
                    .u64("inner_iterations", preport.inner_iterations as u64)
                    .u64("inner_detector_events", preport.detector_events.len() as u64)
                    .u64("inner_detector_restarts", preport.detector_restarts as u64)
                    .u64("inner_injections", preport.injections.len() as u64)
                    .bool("rejected", preport.rejected)
                    .emit();
            }

            #[allow(clippy::neg_cmp_op_on_partial_ord)] // a NaN norm must count as breakdown
            if !(ores.vnorm.abs() > breakdown_tol) {
                // Breakdown: FGMRES' trichotomy (§VI-C). Decide with the
                // rank-revealing factorization of the square projected
                // matrix H(1:j,1:j).
                if square_hessenberg_is_full_rank(&h_cols, cfg.rank_tol) {
                    apply_update(&mut x, &z_basis, &hqr, cfg.lsq_policy, &mut report);
                    residual(a, b, &x, &mut r);
                    report.true_residual_norm = Some(vector::nrm2(&r));
                    finished = Some(SolveOutcome::InvariantSubspace);
                } else {
                    finished = Some(SolveOutcome::RankDeficient);
                }
                break 'cycles;
            }

            let mut q_next = w.clone();
            vector::scal(1.0 / ores.vnorm, &mut q_next);
            v_basis.push(q_next);

            if res_est <= target {
                // Candidate convergence — verify reliably before claiming.
                apply_update(&mut x, &z_basis, &hqr, cfg.lsq_policy, &mut report);
                if matches!(report.outcome, SolveOutcome::NumericalBreakdown(_)) {
                    break 'cycles;
                }
                residual(a, b, &x, &mut r);
                let true_res = vector::nrm2(&r);
                report.true_residual_norm = Some(true_res);
                if true_res <= cfg.final_check_slack * target {
                    finished = Some(SolveOutcome::Converged);
                    break 'cycles;
                }
                // The recurrence lied (tainted inner data). Restart the
                // outer iteration from the current reliable iterate.
                if outer_restarts < cfg.max_outer_restarts {
                    outer_restarts += 1;
                    continue 'cycles;
                }
                finished = Some(SolveOutcome::MaxIterations);
                break 'cycles;
            }
        }

        if outer_done >= cfg.max_outer && finished.is_none() {
            apply_update(&mut x, &z_basis, &hqr, cfg.lsq_policy, &mut report);
            residual(a, b, &x, &mut r);
            report.true_residual_norm = Some(vector::nrm2(&r));
            finished = Some(SolveOutcome::MaxIterations);
        }
    }

    if !matches!(report.outcome, SolveOutcome::NumericalBreakdown(_)) {
        report.outcome = finished.unwrap_or(SolveOutcome::MaxIterations);
    }
    report.iterations = outer_done;
    if report.true_residual_norm.is_none() {
        residual(a, b, &x, &mut r);
        report.true_residual_norm = Some(vector::nrm2(&r));
    }
    if sdc_obs::enabled() {
        sdc_obs::Event::new(&EV_DONE)
            .str("outcome", report.outcome.label().to_string())
            .u64("iterations", report.iterations as u64)
            .u64("total_inner_iterations", report.total_inner_iterations as u64)
            .u64("inner_rejections", report.inner_rejections as u64)
            .u64("detector_restarts", report.detector_restarts as u64)
            .u64("injections", report.injections.len() as u64)
            .f64("true_residual", report.true_residual_norm.unwrap_or(f64::NAN))
            .emit();
    }
    (x, report)
}

/// Checks whether the square projected matrix `H(1:j,1:j)` has full
/// numerical rank at relative tolerance `tol` (the trichotomy test).
fn square_hessenberg_is_full_rank(h_cols: &[Vec<f64>], tol: f64) -> bool {
    let j = h_cols.len();
    if j == 0 {
        return true;
    }
    let mut hsq = DenseMatrix::zeros(j, j);
    for (c, col) in h_cols.iter().enumerate() {
        for (rix, &v) in col.iter().enumerate().take(j) {
            hsq[(rix, c)] = v;
        }
    }
    match jacobi_svd(&hsq) {
        Ok(svd) => svd.rank(tol) == j,
        Err(_) => false,
    }
}

/// Per-iteration condition telemetry of the outer triangular factor
/// (exposed for experiments; the solver itself uses it only for
/// diagnostics).
pub fn outer_factor_condition(hqr: &HessenbergQr) -> f64 {
    estimate_condition(&hqr.r_matrix()).cond()
}

fn apply_update(
    x: &mut [f64],
    z_basis: &[Vec<f64>],
    hqr: &HessenbergQr,
    policy: LstsqPolicy,
    report: &mut SolveReport,
) {
    let k = hqr.k();
    if k == 0 {
        return;
    }
    match solve_projected(&hqr.r_matrix(), hqr.rhs(), policy) {
        Ok(out) => {
            // x = x0 + Z y (Algorithm 2, line 22): the update lives in the
            // span of the *preconditioned* vectors.
            for (c, &yc) in out.y.iter().enumerate() {
                vector::par_axpy(yc, &z_basis[c], x);
            }
        }
        Err(e) => {
            report.outcome = SolveOutcome::NumericalBreakdown(e.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{IdentityPrecond, JacobiPrecond};
    use sdc_sparse::gallery;

    fn b_for(a: &sdc_sparse::CsrMatrix) -> Vec<f64> {
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        b
    }

    #[test]
    fn identity_precond_matches_gmres_trajectory() {
        // FGMRES with M = I spans the same Krylov space as GMRES.
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg = FgmresConfig { tol: 1e-9, max_outer: 200, ..Default::default() };
        let mut p = FixedPrecond(IdentityPrecond);
        let (x, rep) = fgmres_solve(&a, &b, None, &cfg, &mut p);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "{err}");
        // Reliable verification recorded.
        assert!(rep.true_residual_norm.unwrap() <= 1e-8 * vector::nrm2(&b) * 10.0);
    }

    #[test]
    fn jacobi_precond_converges() {
        let a = gallery::convection_diffusion_2d(9, 3.0, 1.0);
        let b = b_for(&a);
        let cfg = FgmresConfig { tol: 1e-9, max_outer: 300, ..Default::default() };
        let mut p = FixedPrecond(JacobiPrecond::from_matrix(&a));
        let (x, rep) = fgmres_solve(&a, &b, None, &cfg, &mut p);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-5);
    }

    #[test]
    fn varying_preconditioner_is_tolerated() {
        // A preconditioner that changes scale every iteration — legal for
        // FGMRES, fatal for plain GMRES theory.
        struct Wobbly;
        impl FlexiblePreconditioner for Wobbly {
            fn apply_flexible(&mut self, j: usize, q: &[f64], z: &mut [f64]) -> PrecondReport {
                let s = if j % 2 == 0 { 3.0 } else { 0.25 };
                for i in 0..q.len() {
                    z[i] = s * q[i];
                }
                PrecondReport::default()
            }
        }
        let a = gallery::poisson2d(7);
        let b = b_for(&a);
        let cfg = FgmresConfig { tol: 1e-9, max_outer: 200, ..Default::default() };
        let (x, rep) = fgmres_solve(&a, &b, None, &cfg, &mut Wobbly);
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6);
    }

    #[test]
    fn garbage_preconditioner_never_yields_wrong_answer() {
        // The key FT-GMRES promise: an adversarial preconditioner may slow
        // convergence but must not produce a silently wrong solution.
        struct Adversarial {
            count: usize,
        }
        impl FlexiblePreconditioner for Adversarial {
            fn apply_flexible(&mut self, _j: usize, q: &[f64], z: &mut [f64]) -> PrecondReport {
                self.count += 1;
                if self.count == 3 {
                    // Garbage direction of huge magnitude.
                    for (i, zi) in z.iter_mut().enumerate() {
                        *zi = ((i * 2654435761) % 1000) as f64 * 1e6 - 5e8;
                    }
                } else {
                    z.copy_from_slice(q);
                }
                PrecondReport::default()
            }
        }
        let a = gallery::poisson2d(7);
        let b = b_for(&a);
        let cfg = FgmresConfig { tol: 1e-9, max_outer: 300, ..Default::default() };
        let (x, rep) = fgmres_solve(&a, &b, None, &cfg, &mut Adversarial { count: 0 });
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        // Verified true residual, not just the recurrence.
        let mut r = vec![0.0; b.len()];
        residual(&a, &b, &x, &mut r);
        assert!(vector::nrm2(&r) <= 1e-7 * vector::nrm2(&b));
    }

    #[test]
    fn square_rank_check_detects_singularity() {
        // h columns representing H(1:2,1:2) = [[1,1],[0,0]] (singular).
        let cols = vec![vec![1.0, 0.0], vec![1.0, 0.0, 0.0]];
        assert!(!square_hessenberg_is_full_rank(&cols, 1e-12));
        let cols = vec![vec![1.0, 0.5], vec![1.0, 2.0, 0.0]];
        assert!(square_hessenberg_is_full_rank(&cols, 1e-12));
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = gallery::poisson2d(4);
        let b = vec![0.0; a.nrows()];
        let mut p = FixedPrecond(IdentityPrecond);
        let (x, rep) = fgmres_solve(&a, &b, None, &FgmresConfig::default(), &mut p);
        assert!(x.iter().all(|&v| v == 0.0));
        assert!(rep.outcome.is_converged());
    }

    #[test]
    fn outer_budget_respected() {
        let a = gallery::poisson2d(10);
        let b = b_for(&a);
        let cfg = FgmresConfig { tol: 1e-14, max_outer: 3, ..Default::default() };
        let mut p = FixedPrecond(IdentityPrecond);
        let (_, rep) = fgmres_solve(&a, &b, None, &cfg, &mut p);
        assert_eq!(rep.iterations, 3);
        assert_eq!(rep.outcome, SolveOutcome::MaxIterations);
        assert!(rep.true_residual_norm.is_some());
    }
}

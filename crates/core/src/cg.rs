//! Conjugate Gradient — the SPD baseline.
//!
//! Table I notes the Poisson matrix "could be solved using the Conjugate
//! Gradient method"; CG is the natural baseline against which GMRES'
//! per-iteration costs and SDC sensitivity are discussed. This is the
//! standard Hestenes–Stiefel recurrence with a reliable true-residual
//! computation at exit.

use crate::operator::{residual, LinearOperator};
use crate::telemetry::{SolveOutcome, SolveReport};
use sdc_dense::vector;

/// CG configuration.
#[derive(Clone, Copy, Debug)]
pub struct CgConfig {
    /// Relative residual target `‖r‖ ≤ tol·‖b‖`.
    pub tol: f64,
    /// Iteration budget.
    pub max_iters: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self { tol: 1e-8, max_iters: 1000 }
    }
}

/// Solves `A x = b` for SPD `A`.
pub fn cg_solve<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    cfg: &CgConfig,
) -> (Vec<f64>, SolveReport) {
    let n = a.nrows();
    assert!(a.is_square(), "cg: operator must be square");
    assert_eq!(b.len(), n, "cg: rhs length");
    let mut report = SolveReport::new();
    let mut x = match x0 {
        Some(x0) => x0.to_vec(),
        None => vec![0.0; n],
    };
    let bnorm = vector::nrm2(b);
    if bnorm == 0.0 {
        x.fill(0.0);
        report.outcome = SolveOutcome::Converged;
        report.residual_norm = 0.0;
        report.true_residual_norm = Some(0.0);
        return (x, report);
    }
    let target = cfg.tol * bnorm;

    let mut r = vec![0.0; n];
    residual(a, b, &x, &mut r);
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = vector::dot(&r, &r);
    report.residual_history.push(rr.sqrt());

    let mut outcome = SolveOutcome::MaxIterations;
    for it in 0..cfg.max_iters {
        report.iterations = it;
        if rr.sqrt() <= target {
            outcome = SolveOutcome::Converged;
            break;
        }
        a.apply(&p, &mut ap);
        let pap = vector::dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Not SPD (or breakdown): report loudly rather than wander.
            outcome = SolveOutcome::NumericalBreakdown(format!(
                "pᵀAp = {pap}: operator not SPD or breakdown"
            ));
            break;
        }
        let alpha = rr / pap;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ap, &mut r);
        let rr_new = vector::dot(&r, &r);
        report.residual_history.push(rr_new.sqrt());
        let beta = rr_new / rr;
        rr = rr_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        report.iterations = it + 1;
    }
    if matches!(outcome, SolveOutcome::MaxIterations) && rr.sqrt() <= target {
        outcome = SolveOutcome::Converged;
    }

    report.outcome = outcome;
    report.residual_norm = rr.sqrt();
    residual(a, b, &x, &mut r);
    report.true_residual_norm = Some(vector::nrm2(&r));
    (x, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_sparse::gallery;

    fn b_for(a: &sdc_sparse::CsrMatrix) -> Vec<f64> {
        let ones = vec![1.0; a.ncols()];
        let mut b = vec![0.0; a.nrows()];
        a.spmv(&ones, &mut b);
        b
    }

    #[test]
    fn solves_poisson() {
        let a = gallery::poisson2d(12);
        let b = b_for(&a);
        let (x, rep) = cg_solve(&a, &b, None, &CgConfig { tol: 1e-10, max_iters: 2000 });
        assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-7, "{err}");
    }

    #[test]
    fn agrees_with_gmres_on_spd() {
        let a = gallery::poisson2d(9);
        let b = b_for(&a);
        let (xc, _) = cg_solve(&a, &b, None, &CgConfig { tol: 1e-12, max_iters: 2000 });
        let gcfg = crate::gmres::GmresConfig { tol: 1e-12, max_iters: 500, ..Default::default() };
        let (xg, _) = crate::gmres::gmres_solve(&a, &b, None, &gcfg);
        let diff: f64 = xc.iter().zip(xg.iter()).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(diff < 1e-8, "CG and GMRES disagree: {diff}");
    }

    #[test]
    fn rejects_indefinite_operator() {
        // diag(1, -1) is symmetric but indefinite.
        let a = sdc_sparse::CsrMatrix::from_diagonal(&[1.0, -1.0]);
        let b = vec![1.0, 1.0];
        let (_, rep) = cg_solve(&a, &b, None, &CgConfig::default());
        assert!(matches!(rep.outcome, SolveOutcome::NumericalBreakdown(_)), "{:?}", rep.outcome);
    }

    #[test]
    fn warm_start() {
        let a = gallery::poisson2d(8);
        let b = b_for(&a);
        let cfg = CgConfig { tol: 1e-10, max_iters: 2000 };
        let (x, _) = cg_solve(&a, &b, None, &cfg);
        let (_, rep2) = cg_solve(&a, &b, Some(&x), &cfg);
        assert!(rep2.iterations <= 1);
    }

    #[test]
    fn zero_rhs() {
        let a = gallery::poisson2d(5);
        let b = vec![0.0; a.nrows()];
        let (x, rep) = cg_solve(&a, &b, None, &CgConfig::default());
        assert!(rep.outcome.is_converged());
        assert!(x.iter().all(|&v| v == 0.0));
    }
}

//! # sdc-repro
//!
//! Umbrella crate for the reproduction of Elliott, Hoemmen & Mueller,
//! *Evaluating the Impact of SDC on the GMRES Iterative Solver*
//! (IPDPS 2014). It re-exports the eight library crates so applications
//! can depend on a single crate:
//!
//! * [`obs`] — the observability spine: structured events with a
//!   deterministic/timing two-channel trace sink and the unified
//!   metrics registry (Prometheus text exposition).
//! * [`parallel`] — the execution substrate: a deterministic
//!   `std::thread` work pool and the canonical tree reduction every
//!   `par_*` kernel dispatches to (`--threads` / `SDC_THREADS`).
//! * [`dense`] — dense linear-algebra substrate (QR, SVD, incremental
//!   Hessenberg least squares, rank-revealing solve policies).
//! * [`sparse`] — sparse matrices, kernels, Matrix Market I/O, the
//!   matrix gallery (including the paper's exact Poisson operator and
//!   the synthetic `mult_dcop_03` stand-in).
//! * [`faults`] — SDC fault models, injection sites/triggers, the
//!   sandbox executor and bit-flip anatomy.
//! * [`solvers`] — GMRES / Flexible GMRES / FT-GMRES with the
//!   invariant-based SDC detector, plus the CG baseline.
//! * [`campaigns`] — the declarative, resumable, artifact-first
//!   campaign engine (specs, sharded executor, JSONL artifacts,
//!   re-solve-free reports).
//! * [`server`] — the long-lived solve service: matrix registry,
//!   batching scheduler, streaming campaign jobs over a
//!   newline-delimited JSON protocol (`serve` / `solve-client`).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record. The `examples/`
//! directory contains runnable walkthroughs and `crates/bench` the
//! binaries that regenerate every table and figure of the paper.

pub use sdc_campaigns as campaigns;
pub use sdc_dense as dense;
pub use sdc_faults as faults;
pub use sdc_gmres as solvers;
pub use sdc_obs as obs;
pub use sdc_parallel as parallel;
pub use sdc_server as server;
pub use sdc_sparse as sparse;

/// Everything an application typically needs.
pub mod prelude {
    pub use sdc_gmres::prelude::*;
    pub use sdc_sparse::{gallery, CsrMatrix};
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let a = crate::sparse::gallery::poisson2d(4);
        assert_eq!(a.nrows(), 16);
        let m = crate::dense::DenseMatrix::identity(2);
        assert_eq!(m[(0, 0)], 1.0);
        let f = crate::faults::FaultModel::CLASS1_HUGE;
        assert_eq!(f.apply(1.0), 1e150);
        let spec = crate::campaigns::CampaignSpec::paper_shape(
            "wired",
            vec![crate::campaigns::ProblemSpec::Poisson { m: 4 }],
        );
        assert_eq!(spec.scenarios().len(), 8);
        assert!(crate::parallel::threads() >= 1);
    }
}

//! Offline stand-in for `criterion`: the API subset this workspace's
//! benches use, measuring plain wall-clock time.
//!
//! Each benchmark runs a short warm-up followed by `sample_size` timed
//! samples and prints the minimum and mean sample time. There is no
//! statistical analysis, outlier rejection, or HTML report — the point
//! is that `cargo bench` (and `cargo check --benches`) keep working
//! offline with unmodified bench sources.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 10;
const WARMUP_ITERS: usize = 2;

/// Identifier for one benchmark: a function name plus an optional
/// parameter rendered as `name/param`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Conversion accepted by every `bench_*` method (`&str`, `String`, or
/// an explicit [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing driver handed to the bench closure.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Runs `routine` for a warm-up, then `samples` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        let mean = total / self.samples as u32;
        println!("    min {min:>12.3?}   mean {mean:>12.3?}   ({} samples)", self.samples);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}/{}", self.name, id.into_benchmark_id().id);
        f(&mut Bencher { samples: self.sample_size });
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{}", self.name, id.into_benchmark_id().id);
        f(&mut Bencher { samples: self.sample_size }, input);
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench context created by `criterion_main!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { name, sample_size: DEFAULT_SAMPLE_SIZE, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}", id.into_benchmark_id().id);
        f(&mut Bencher { samples: DEFAULT_SAMPLE_SIZE });
        self
    }
}

/// Re-export so bench sources may use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| {
                b.iter(|| ran += x);
            });
            g.finish();
        }
        // 2 warm-up + 3 samples for each bench.
        assert_eq!(ran, 5 + 5 * 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("serial", 100).id, "serial/100");
        assert_eq!("plain".into_benchmark_id().id, "plain");
    }

    #[test]
    fn top_level_bench_function() {
        let mut c = Criterion::default();
        let mut n = 0u32;
        c.bench_function("count", |b| b.iter(|| n += 1));
        assert!(n > 0);
    }
}

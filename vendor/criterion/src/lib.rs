//! Offline stand-in for `criterion`: the API subset this workspace's
//! benches use, measuring plain wall-clock time.
//!
//! Each benchmark runs a short warm-up followed by `sample_size` timed
//! samples and prints the minimum, median and mean sample time. There is
//! no statistical analysis, outlier rejection, or HTML report — the
//! point is that `cargo bench` (and `cargo check --benches`) keep
//! working offline with unmodified bench sources.
//!
//! Two environment variables extend the stock API for CI:
//!
//! * `BENCH_QUICK=1` caps every benchmark at [`QUICK_SAMPLES`] samples
//!   and one warm-up iteration. Problem sizes are untouched (they live
//!   in the bench sources), so per-iteration medians stay comparable to
//!   a full run — only their noise floor rises.
//! * `BENCH_JSON=path` appends one JSON line per benchmark to `path`:
//!   `{"id":...,"samples":N,"min_us":...,"median_us":...,"mean_us":...}`.
//!   The workspace's `bench_gate` binary diffs these dumps against the
//!   committed `BENCH_*.json` baselines. Bench sources may tag every
//!   dumped line with extra string fields (host ISA, kernel tier, …)
//!   via [`set_dump_context`].

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 10;
const WARMUP_ITERS: usize = 2;

/// Sample cap under `BENCH_QUICK=1`.
pub const QUICK_SAMPLES: usize = 5;

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Pre-rendered `,"key":"value"` fragment spliced into every
/// `BENCH_JSON` line, set once by the bench process.
static DUMP_CONTEXT: Mutex<String> = Mutex::new(String::new());

/// Tags every subsequent `BENCH_JSON` line with the given string
/// fields, e.g. `set_dump_context(&[("isa", "avx2")])` turns a dump
/// line into `{"id":...,"mean_us":...,"isa":"avx2"}`.
///
/// Keys and values are spliced into the JSON verbatim, so they must not
/// contain `"` or `\` — fine for the identifier-shaped tags this is
/// for. Calling again replaces the whole set; an empty slice clears it.
pub fn set_dump_context(pairs: &[(&str, &str)]) {
    let mut rendered = String::new();
    for (k, v) in pairs {
        assert!(
            !k.contains(['"', '\\']) && !v.contains(['"', '\\']),
            "dump context entries must be plain identifiers: {k:?}={v:?}"
        );
        rendered.push_str(&format!(",\"{k}\":\"{v}\""));
    }
    *DUMP_CONTEXT.lock().unwrap() = rendered;
}

/// Identifier for one benchmark: a function name plus an optional
/// parameter rendered as `name/param`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Conversion accepted by every `bench_*` method (`&str`, `String`, or
/// an explicit [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing driver handed to the bench closure.
pub struct Bencher {
    samples: usize,
    /// Fully-qualified id (`group/bench`) for the `BENCH_JSON` dump.
    full_id: String,
}

impl Bencher {
    /// Runs `routine` for a warm-up, then `samples` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let quick = quick_mode();
        let warmup = if quick { 1 } else { WARMUP_ITERS };
        let samples = if quick { self.samples.min(QUICK_SAMPLES) } else { self.samples };
        for _ in 0..warmup {
            std::hint::black_box(routine());
        }
        let mut timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            timings.push(start.elapsed());
        }
        let total: Duration = timings.iter().sum();
        let min = timings.iter().copied().min().unwrap_or(Duration::ZERO);
        let mean = total / samples as u32;
        let median = median_of(&mut timings);
        println!(
            "    min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}   ({samples} samples)"
        );
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                self.dump_json(&path, samples, min, median, mean);
            }
        }
    }

    fn dump_json(
        &self,
        path: &str,
        samples: usize,
        min: Duration,
        median: Duration,
        mean: Duration,
    ) {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        let context = DUMP_CONTEXT.lock().unwrap().clone();
        // `{:?}` on f64 prints the shortest round-trip representation.
        let line = format!(
            "{{\"id\":\"{}\",\"samples\":{},\"min_us\":{:?},\"median_us\":{:?},\"mean_us\":{:?}{}}}\n",
            self.full_id,
            samples,
            us(min),
            us(median),
            us(mean),
            context
        );
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("criterion: cannot append BENCH_JSON to {path}: {e}");
        }
    }
}

/// Median of a sample set (lower-middle for even counts, so the value is
/// always one that was actually measured).
fn median_of(timings: &mut [Duration]) -> Duration {
    if timings.is_empty() {
        return Duration::ZERO;
    }
    timings.sort_unstable();
    timings[(timings.len() - 1) / 2]
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        println!("{full_id}");
        f(&mut Bencher { samples: self.sample_size, full_id });
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        println!("{full_id}");
        f(&mut Bencher { samples: self.sample_size, full_id }, input);
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench context created by `criterion_main!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { name, sample_size: DEFAULT_SAMPLE_SIZE, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = id.into_benchmark_id().id;
        println!("{full_id}");
        f(&mut Bencher { samples: DEFAULT_SAMPLE_SIZE, full_id });
        self
    }
}

/// Re-export so bench sources may use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| {
                b.iter(|| ran += x);
            });
            g.finish();
        }
        // Warm-up + samples for each bench: 2+3 in normal mode, 1+3 in
        // quick mode (the suite may run under BENCH_QUICK).
        assert!(ran == 5 + 5 * 7 || ran == 4 + 4 * 7, "ran = {ran}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("serial", 100).id, "serial/100");
        assert_eq!("plain".into_benchmark_id().id, "plain");
    }

    #[test]
    fn top_level_bench_function() {
        let mut c = Criterion::default();
        let mut n = 0u32;
        c.bench_function("count", |b| b.iter(|| n += 1));
        assert!(n > 0);
    }

    #[test]
    fn median_is_a_measured_sample() {
        let d = Duration::from_micros;
        assert_eq!(median_of(&mut [d(5), d(1), d(9)]), d(5));
        assert_eq!(median_of(&mut [d(4), d(2), d(8), d(6)]), d(4), "lower-middle on even");
        assert_eq!(median_of(&mut []), Duration::ZERO);
    }

    /// Serializes the tests that set `BENCH_JSON` / the dump context —
    /// both are process-global.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn json_dump_appends_one_line_per_bench() {
        let _env = ENV_LOCK.lock().unwrap();
        let path =
            std::env::temp_dir().join(format!("criterion_dump_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        std::env::set_var("BENCH_JSON", &path);
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("dump");
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| std::hint::black_box(1 + 1)));
            g.finish();
        }
        std::env::remove_var("BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Other tests may bench concurrently while the env var is set;
        // only the line this test produced is asserted on.
        let mine: Vec<&str> = text.lines().filter(|l| l.contains("\"id\":\"dump/a\"")).collect();
        assert_eq!(mine.len(), 1, "{text}");
        assert!(mine[0].contains("median_us") && mine[0].contains("\"samples\":2"), "{text}");
    }

    #[test]
    fn dump_context_tags_every_line() {
        let _env = ENV_LOCK.lock().unwrap();
        let path =
            std::env::temp_dir().join(format!("criterion_context_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        std::env::set_var("BENCH_JSON", &path);
        set_dump_context(&[("isa", "avx2"), ("tier", "strict")]);
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("ctx");
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| std::hint::black_box(2 + 2)));
            g.finish();
        }
        set_dump_context(&[]);
        std::env::remove_var("BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let mine: Vec<&str> = text.lines().filter(|l| l.contains("\"id\":\"ctx/a\"")).collect();
        assert_eq!(mine.len(), 1, "{text}");
        // The tags ride after the timing fields, inside the object.
        assert!(
            mine[0].ends_with(",\"isa\":\"avx2\",\"tier\":\"strict\"}"),
            "context fields missing or misplaced: {}",
            mine[0]
        );
        // Clearing the context restores the stock line shape.
        assert!(DUMP_CONTEXT.lock().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "plain identifiers")]
    fn dump_context_rejects_json_breaking_values() {
        set_dump_context(&[("isa", "av\"x2")]);
    }
}

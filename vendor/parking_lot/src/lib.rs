//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the API subset this workspace uses: `Mutex` and `RwLock`
//! whose lock methods return guards directly (no `Result`). A poisoned
//! std lock — possible only if a thread panicked while holding it — is
//! recovered transparently, matching parking_lot's "panics do not
//! poison" contract.

#![forbid(unsafe_code)]

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot contract: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

//! Offline stand-in for `proptest`: a deterministic property-testing
//! harness covering the API subset this workspace uses.
//!
//! Supported surface: the `proptest!` macro (including an optional
//! `#![proptest_config(..)]` header), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, `prop_oneof!`, `Just`, range
//! strategies over the primitive numeric types, tuple strategies, the
//! `prop_map` / `prop_filter` / `prop_flat_map` combinators, and
//! `collection::vec` with an exact or ranged size.
//!
//! Differences from the real crate, by design: the per-test RNG seed is
//! a pure function of the test name (fully reproducible runs, no
//! persistence files) and failing cases are **not shrunk** — the harness
//! reports the failing case index and seed instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Execution parameters for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed derived from `name` via FNV-1a, so every test gets a
        /// distinct but fully reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "TestRng::below: bound must be positive");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason: reason.into(), pred }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// Type-erased strategy, the element type of `prop_oneof!` unions.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Mirrors proptest's rejection sampling with a local-rejection cap.
            for _ in 0..1_000 {
                let candidate = self.inner.generate(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter exhausted 1000 rejections: {}", self.reason);
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.arms.len() as u64) as usize;
            self.arms[ix].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.abs_diff(self.start) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            // start + u*(end-start) can round up to `end` for u near 1;
            // the Range contract is half-open, so resample (p ~ 2^-53).
            loop {
                let v = self.start + rng.next_f64() * (self.end - self.start);
                if v < self.end {
                    return v;
                }
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $ix:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Target length for `collection::vec`: exact or drawn from a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self { lo: exact, hi_exclusive: exact + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Entry point: a block of property tests, optionally preceded by
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( #[test] fn $name:ident (
          $( $arg:ident in $strat:expr ),+ $(,)?
      ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = ($strat).generate(&mut rng); )+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest stand-in: property '{}' failed at case {} of {} \
                             (deterministic seed; rerun reproduces it exactly)",
                            stringify!($name), case, config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {{
        use $crate::strategy::Strategy as _;
        $crate::strategy::Union::new(vec![ $( ($arm).boxed() ),+ ])
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (-300i32..150).generate(&mut rng);
            assert!((-300..150).contains(&v));
            let f = (-1e6f64..1e6).generate(&mut rng);
            assert!((-1e6..1e6).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::deterministic("sizes");
        let exact = crate::collection::vec(0u8..10, 7).generate(&mut rng);
        assert_eq!(exact.len(), 7);
        for _ in 0..100 {
            let ranged = crate::collection::vec(0u8..10, 2..5usize).generate(&mut rng);
            assert!((2..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combine");
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_flat_map(|v| crate::collection::vec(0u32..v.max(1), 3));
        let v = s.generate(&mut rng);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    // The macro itself, end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn tuples_and_vecs(xs in crate::collection::vec((0usize..5, -1.0f64..1.0), 0..8usize)) {
            for (i, x) in &xs {
                prop_assert!(*i < 5);
                prop_assert!((-1.0..1.0).contains(x), "x out of range: {}", x);
            }
        }
    }
}

//! Offline stand-in for `rayon`: the prelude subset this workspace uses,
//! implemented **sequentially** over std iterators.
//!
//! Every `par_*` method returns the corresponding `std` iterator, so the
//! full std `Iterator` combinator vocabulary (`zip`, `map`, `enumerate`,
//! `for_each`, `collect`, …) works unchanged and results are trivially
//! bitwise-identical to the serial code paths. This preserves the
//! workspace's determinism contract (fault campaigns replay solves and
//! compare bitwise); it gives up parallel speed-up until the real rayon
//! can be restored in `[workspace.dependencies]`.

#![forbid(unsafe_code)]

pub mod slice {
    /// `par_chunks` / `par_iter` over shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            assert!(chunk_size > 0, "par_chunks: chunk_size must be > 0");
            self.chunks(chunk_size)
        }
    }

    /// `par_chunks_mut` / `par_iter_mut` over exclusive slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            assert!(chunk_size > 0, "par_chunks_mut: chunk_size must be > 0");
            self.chunks_mut(chunk_size)
        }
    }
}

pub mod iter {
    /// `.par_iter()` — borrow a collection as a "parallel" iterator.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` — exclusively borrow a collection.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `.into_par_iter()` — consume a collection.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        // Via a Vec receiver on purpose: exercises the auto-deref to `[T]`.
        let v: Vec<i32> = (1..=3).collect();
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut v = vec![0usize; 4];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn par_chunks_zip() {
        let x = [1.0f64; 10];
        let y = [2.0f64; 10];
        let sums: Vec<f64> = x
            .par_chunks(4)
            .zip(y.par_chunks(4))
            .map(|(a, b)| a.iter().sum::<f64>() + b.iter().sum::<f64>())
            .collect();
        assert_eq!(sums, vec![12.0, 12.0, 6.0]);
    }

    #[test]
    fn par_chunks_mut_writes() {
        let mut y = [0.0f64; 6];
        y.par_chunks_mut(2).for_each(|c| c.fill(1.0));
        assert!(y.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn into_par_iter_range() {
        let total: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(total, 10);
    }
}

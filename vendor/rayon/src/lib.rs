//! Offline stand-in for `rayon`: the prelude subset this workspace
//! uses, executed for real on the [`sdc_parallel`] work pool.
//!
//! The façade keeps rayon's names (`par_iter`, `par_iter_mut`,
//! `par_chunks`, `par_chunks_mut`, `into_par_iter` and the
//! `map`/`zip`/`enumerate`/`for_each`/`collect`/`sum` combinators), so
//! every call site in the workspace upgraded from the old sequential
//! stand-in to real threads without a source change.
//!
//! Execution model: a parallel iterator is a [`Producer`] — a splittable,
//! random-access description of the sequence. A consumer splits it into
//! at most `MAX_PIECES` (64) contiguous pieces (**a function of the length
//! alone, never of thread count**), the pool's threads claim pieces
//! dynamically, and piece results are kept in piece order. `collect`
//! therefore preserves the sequential element order and `for_each`
//! touches each element exactly once, making every consumer's output
//! bitwise-identical to the serial code path — the determinism contract
//! the SDC campaigns replay and diff against. Nested parallel regions
//! (a `par_chunks` dot product inside a `par_iter` campaign shard) run
//! inline on the current pool thread.

#![forbid(unsafe_code)]

use std::sync::{Arc, Mutex};

/// Upper bound on pieces per region: enough for dynamic load balancing
/// at any sane thread count, small enough that piece handoff is noise.
const MAX_PIECES: usize = 64;

/// A splittable description of a parallel sequence.
///
/// `split_at` cuts the sequence in two at an element boundary;
/// `into_seq` yields one piece's elements in order on a single thread.
#[allow(clippy::len_without_is_empty)] // a length-only protocol: pieces are never emptiness-tested
pub trait Producer: Send + Sized {
    /// Element type.
    type Item: Send;
    /// Sequential iterator over one piece.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Remaining element count.
    fn len(&self) -> usize;
    /// Splits into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Sequential traversal of this piece.
    fn into_seq(self) -> Self::SeqIter;
}

/// Cuts a producer into `k` balanced contiguous pieces.
fn split_even<P: Producer>(p: P, k: usize) -> Vec<P> {
    let mut out = Vec::with_capacity(k);
    let mut rest = p;
    for i in 0..k - 1 {
        let take = rest.len() / (k - i);
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

/// Runs `per_piece` over the pieces of `p`, returning results in piece
/// (i.e. sequence) order. Piece boundaries depend only on `p.len()`.
fn drive<P, T, F>(p: P, per_piece: F) -> Vec<T>
where
    P: Producer,
    T: Send,
    F: Fn(P) -> T + Sync,
{
    let n = p.len();
    if n <= 1 || sdc_parallel::threads() <= 1 || sdc_parallel::is_pool_worker() {
        return vec![per_piece(p)];
    }
    let k = n.min(MAX_PIECES);
    let slots: Vec<Mutex<Option<P>>> =
        split_even(p, k).into_iter().map(|piece| Mutex::new(Some(piece))).collect();
    let outs: Vec<Mutex<Option<T>>> = (0..k).map(|_| Mutex::new(None)).collect();
    sdc_parallel::run_pieces(k, &|i| {
        let piece = slots[i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("each piece is claimed exactly once");
        *outs[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(per_piece(piece));
    });
    outs.into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("run_pieces returned, so every piece completed")
        })
        .collect()
}

/// The parallel iterator: a producer plus the combinator vocabulary.
pub struct ParIter<P: Producer> {
    producer: P,
}

impl<P: Producer> ParIter<P> {
    fn new(producer: P) -> Self {
        Self { producer }
    }

    /// Maps each element through `f`.
    pub fn map<R, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Send + Sync,
    {
        ParIter::new(Map { base: self.producer, f: Arc::new(f) })
    }

    /// Pairs elements with a second parallel iterator (stops at the
    /// shorter sequence, like `Iterator::zip`).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<Zip<P, Q>> {
        ParIter::new(Zip { a: self.producer, b: other.producer })
    }

    /// Pairs each element with its sequence index.
    pub fn enumerate(self) -> ParIter<Enumerate<P>> {
        ParIter::new(Enumerate { base: self.producer, offset: 0 })
    }

    /// Consumes every element on the pool.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        drive(self.producer, |piece| piece.into_seq().for_each(&f));
    }

    /// Collects into `C`, preserving the sequential element order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the elements. The partials are combined in sequence order,
    /// so the result matches the serial sum for any thread count.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item>,
    {
        self.collect::<Vec<P::Item>>().into_iter().sum()
    }
}

/// Order-preserving parallel `collect` target.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection from a parallel iterator.
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self {
        let parts = drive(iter.producer, |piece| {
            let mut v = Vec::with_capacity(piece.len());
            v.extend(piece.into_seq());
            v
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Adapter producers.
// ---------------------------------------------------------------------

/// Producer for [`ParIter::map`].
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

/// Sequential side of [`Map`].
pub struct MapSeqIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for MapSeqIter<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }
}

impl<P, F, R> Producer for Map<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;
    type SeqIter = MapSeqIter<P::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (Map { base: a, f: self.f.clone() }, Map { base: b, f: self.f })
    }
    fn into_seq(self) -> Self::SeqIter {
        MapSeqIter { base: self.base.into_seq(), f: self.f }
    }
}

/// Producer for [`ParIter::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(mid);
        let (b1, b2) = self.b.split_at(mid);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Producer for [`ParIter::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential side of [`Enumerate`].
pub struct EnumerateSeqIter<I> {
    base: I,
    next_index: usize,
}

impl<I: Iterator> Iterator for EnumerateSeqIter<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.base.next()?;
        let i = self.next_index;
        self.next_index += 1;
        Some((i, item))
    }
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeqIter<P::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Enumerate { base: a, offset: self.offset },
            Enumerate { base: b, offset: self.offset + mid },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeqIter { base: self.base.into_seq(), next_index: self.offset }
    }
}

// ---------------------------------------------------------------------
// Source producers.
// ---------------------------------------------------------------------

/// Shared-slice element producer (`par_iter`).
pub struct SliceProducer<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(mid);
        (SliceProducer { slice: a }, SliceProducer { slice: b })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Exclusive-slice element producer (`par_iter_mut`).
pub struct SliceMutProducer<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(mid);
        (SliceMutProducer { slice: a }, SliceMutProducer { slice: b })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// Shared chunk producer (`par_chunks`); elements are subslices.
pub struct ChunksProducer<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(at);
        (ChunksProducer { slice: a, size: self.size }, ChunksProducer { slice: b, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}

/// Exclusive chunk producer (`par_chunks_mut`).
pub struct ChunksMutProducer<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(at);
        (
            ChunksMutProducer { slice: a, size: self.size },
            ChunksMutProducer { slice: b, size: self.size },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Index-range producer (`(a..b).into_par_iter()`).
pub struct RangeProducer {
    range: std::ops::Range<usize>,
}

impl Producer for RangeProducer {
    type Item = usize;
    type SeqIter = std::ops::Range<usize>;

    fn len(&self) -> usize {
        self.range.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let split = self.range.start + mid;
        (
            RangeProducer { range: self.range.start..split },
            RangeProducer { range: split..self.range.end },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        self.range
    }
}

/// Owned-vector producer (`vec.into_par_iter()`).
pub struct VecProducer<T: Send> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }
    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.vec.split_off(mid);
        (self, VecProducer { vec: tail })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}

// ---------------------------------------------------------------------
// Entry-point traits (rayon's names, so call sites compile unchanged).
// ---------------------------------------------------------------------

pub mod slice {
    use super::{ChunksMutProducer, ChunksProducer, ParIter};

    /// `par_chunks` over shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
            assert!(chunk_size > 0, "par_chunks: chunk_size must be > 0");
            ParIter::new(ChunksProducer { slice: self, size: chunk_size })
        }
    }

    /// `par_chunks_mut` over exclusive slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
            assert!(chunk_size > 0, "par_chunks_mut: chunk_size must be > 0");
            ParIter::new(ChunksMutProducer { slice: self, size: chunk_size })
        }
    }
}

pub mod iter {
    use super::{ParIter, RangeProducer, SliceMutProducer, SliceProducer, VecProducer};

    /// `.par_iter()` — borrow a collection as a parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed parallel iterator.
        type Iter;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParIter<SliceProducer<'data, T>>;
        fn par_iter(&'data self) -> Self::Iter {
            ParIter::new(SliceProducer { slice: self })
        }
    }

    /// `.par_iter_mut()` — exclusively borrow a collection.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The borrowed parallel iterator.
        type Iter;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = ParIter<SliceMutProducer<'data, T>>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            ParIter::new(SliceMutProducer { slice: self })
        }
    }

    /// `.into_par_iter()` — consume a collection.
    pub trait IntoParallelIterator {
        /// The owning parallel iterator.
        type Iter;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = ParIter<VecProducer<T>>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter::new(VecProducer { vec: self })
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = ParIter<RangeProducer>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter::new(RangeProducer { range: self })
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        // Via a Vec receiver on purpose: exercises the auto-deref to `[T]`.
        let v: Vec<i32> = (1..=3).collect();
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut v = vec![0usize; 4];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn par_chunks_zip() {
        let x = [1.0f64; 10];
        let y = [2.0f64; 10];
        let sums: Vec<f64> = x
            .par_chunks(4)
            .zip(y.par_chunks(4))
            .map(|(a, b)| a.iter().sum::<f64>() + b.iter().sum::<f64>())
            .collect();
        assert_eq!(sums, vec![12.0, 12.0, 6.0]);
    }

    #[test]
    fn par_chunks_mut_writes() {
        let mut y = [0.0f64; 6];
        y.par_chunks_mut(2).for_each(|c| c.fill(1.0));
        assert!(y.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn into_par_iter_range() {
        let total: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn into_par_iter_vec() {
        let v: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out, vec!["a!", "b!", "c!"]);
    }

    #[test]
    fn collect_preserves_order_on_large_inputs() {
        let _guard = sdc_parallel::test_serial_guard();
        // Large enough to split into every piece the engine will use.
        sdc_parallel::set_threads(4);
        let n = 10_000usize;
        let v: Vec<usize> = (0..n).collect();
        let out: Vec<usize> = v.par_iter().map(|&i| i * 2).collect();
        assert_eq!(out.len(), n);
        assert!(out.iter().enumerate().all(|(i, &x)| x == i * 2));
        sdc_parallel::set_threads(0);
    }

    #[test]
    fn for_each_covers_every_element_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let _guard = sdc_parallel::test_serial_guard();
        sdc_parallel::set_threads(8);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let idx: Vec<usize> = (0..1000).collect();
        idx.par_iter().for_each(|&i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        sdc_parallel::set_threads(0);
    }

    #[test]
    fn zip_stops_at_shorter_sequence() {
        let x = [1, 2, 3, 4, 5];
        let y = [10, 20, 30];
        let pairs: Vec<(i32, i32)> =
            x.par_iter().zip(y.par_iter()).map(|(&a, &b)| (a, b)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
    }
}

//! Offline stand-in for `rand`: the API subset this workspace uses
//! (`StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over `Range`),
//! backed by a SplitMix64 stream.
//!
//! The matrix-gallery generators only require a *deterministic,
//! well-mixed* stream per seed — they are synthetic test operators, not
//! cryptography — so SplitMix64 (Steele, Lea & Flood 2014) is entirely
//! adequate. Note the stream differs from the real `rand::StdRng`
//! (ChaCha12): matrices generated for a given seed are stable across
//! builds of *this* workspace but are not byte-compatible with rand's.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator (subset of rand's trait: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `Rng::gen_range` can draw from a half-open `Range`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.abs_diff(range.start) as u128;
                // Modulo bias is < span/2^64, negligible for the test-matrix
                // spans used here (all far below 2^32).
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // start + u*(end-start) can round up to `end` for u near 1; the
        // Range contract is half-open, so resample (probability ~2^-53).
        loop {
            let u = f64::sample(rng);
            let v = range.start + u * (range.end - range.start);
            if v < range.end {
                return v;
            }
        }
    }
}

/// High-level sampling methods, blanket-implemented for any `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}

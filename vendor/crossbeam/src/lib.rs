//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the `channel` module subset the workspace uses is provided:
//! `bounded` / `unbounded` constructors, a clonable `Sender`, and a
//! `Receiver` with the blocking, timed, and non-blocking receive
//! methods. The semantic contract the fault sandbox relies on —
//! `recv_timeout` returns within the budget even if the sender thread
//! hangs forever — is exactly std's.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a channel.
    pub struct Sender<T>(SenderKind<T>);

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderKind::Bounded(s) => Sender(SenderKind::Bounded(s.clone())),
                SenderKind::Unbounded(s) => Sender(SenderKind::Unbounded(s.clone())),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks while a bounded channel is full, like crossbeam's.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Bounded(s) => s.send(value),
                SenderKind::Unbounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Channel with a fixed capacity; `send` blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    /// Channel with unbounded capacity; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded(1);
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = channel::bounded::<i32>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
    }

    #[test]
    fn unbounded_does_not_block() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.iter().take(100).count(), 100);
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}

//! Integration test of the paper's central claim: FT-GMRES runs through
//! a single SDC event of any magnitude in the inner orthogonalization
//! phase, converging to the *true* solution without rollback — and the
//! detector catches exactly the faults that theory says are impossible.

use sdc_repro::faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
use sdc_repro::prelude::*;
use sdc_repro::solvers::ftgmres::{ftgmres_solve, ftgmres_solve_instrumented};

fn problem(m: usize) -> (CsrMatrix, Vec<f64>) {
    let a = gallery::poisson2d(m);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    (a, b)
}

fn max_err_vs_ones(x: &[f64]) -> f64 {
    x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max)
}

fn base_cfg() -> FtGmresConfig {
    FtGmresConfig {
        outer: sdc_repro::solvers::fgmres::FgmresConfig {
            tol: 1e-8,
            max_outer: 60,
            ..Default::default()
        },
        inner_iters: 12,
        ..Default::default()
    }
}

#[test]
fn run_through_every_class_and_position_dense_grid_of_sites() {
    let (a, b) = problem(12);
    let cfg = base_cfg();
    let (_, ff) = ftgmres_solve(&a, &b, None, &cfg);
    assert!(ff.outcome.is_converged());

    let mut worst = 0usize;
    for class in FaultClass::all() {
        for position in MgsPosition::both() {
            for agg in (1..=cfg.inner_iters * ff.iterations).step_by(7) {
                let point = CampaignPoint {
                    aggregate_iteration: agg,
                    inner_per_outer: cfg.inner_iters,
                    class,
                    position,
                };
                let inj = point.injector();
                let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
                assert!(
                    rep.outcome.is_converged(),
                    "{class:?}/{position:?}/agg={agg}: {:?}",
                    rep.outcome
                );
                assert!(
                    max_err_vs_ones(&x) < 1e-5,
                    "{class:?}/{position:?}/agg={agg}: wrong solution, err={}",
                    max_err_vs_ones(&x)
                );
                worst = worst.max(rep.iterations);
            }
        }
    }
    // Bounded penalty, as in Fig. 3: the worst case is a few extra outer
    // iterations, not runaway.
    assert!(
        worst <= ff.iterations + ff.iterations / 2 + 2,
        "worst {worst} vs failure-free {}",
        ff.iterations
    );
}

#[test]
fn detector_catches_every_committed_class1_fault() {
    let (a, b) = problem(12);
    let mut cfg = base_cfg();
    cfg.inner_detector =
        Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner));
    let (_, ff) = ftgmres_solve(&a, &b, None, &cfg);

    for position in MgsPosition::both() {
        for agg in (1..=cfg.inner_iters * ff.iterations).step_by(5) {
            let point = CampaignPoint {
                aggregate_iteration: agg,
                inner_per_outer: cfg.inner_iters,
                class: FaultClass::Huge,
                position,
            };
            let inj = point.injector();
            let (_, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
            if !rep.injections.is_empty() {
                assert!(
                    rep.detected_anything(),
                    "committed fault at {position:?}/agg={agg} escaped detection"
                );
                // §VII-E: with the detector, the penalty is at most ~1-2
                // outer iterations.
                assert!(
                    rep.iterations <= ff.iterations + 2,
                    "{position:?}/agg={agg}: {} vs ff {}",
                    rep.iterations,
                    ff.iterations
                );
            }
        }
    }
}

#[test]
fn detector_is_silent_for_undetectable_classes() {
    let (a, b) = problem(10);
    let mut cfg = base_cfg();
    cfg.inner_detector =
        Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::RestartInner));
    let (_, ff) = ftgmres_solve(&a, &b, None, &cfg);
    for class in [FaultClass::Slight, FaultClass::Tiny] {
        for agg in (1..=cfg.inner_iters * ff.iterations).step_by(11) {
            let point = CampaignPoint {
                aggregate_iteration: agg,
                inner_per_outer: cfg.inner_iters,
                class,
                position: MgsPosition::First,
            };
            let inj = point.injector();
            let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
            assert!(
                rep.detector_events.is_empty(),
                "{class:?}/agg={agg}: shrinking fault wrongly flagged"
            );
            assert!(rep.outcome.is_converged());
            assert!(max_err_vs_ones(&x) < 1e-5);
        }
    }
}

#[test]
fn nonsymmetric_circuit_run_through() {
    use sdc_repro::sparse::gallery::{circuit_mna, CircuitMnaConfig};
    let mut a = circuit_mna(&CircuitMnaConfig { nodes: 1500, seed: 99, ..Default::default() });
    // Equilibrate as the experiments do.
    let d: Vec<f64> = a.diagonal().iter().map(|&v| 1.0 / v.abs().max(1e-300).sqrt()).collect();
    a.scale_rows(&d);
    a.scale_cols(&d);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);

    let cfg = FtGmresConfig {
        outer: sdc_repro::solvers::fgmres::FgmresConfig {
            tol: 1e-7,
            max_outer: 120,
            ..Default::default()
        },
        inner_iters: 15,
        ..Default::default()
    };
    let (_, ff) = ftgmres_solve(&a, &b, None, &cfg);
    assert!(ff.outcome.is_converged(), "failure-free: {:?}", ff.outcome);

    for class in FaultClass::all() {
        let point = CampaignPoint {
            aggregate_iteration: 18,
            inner_per_outer: cfg.inner_iters,
            class,
            position: MgsPosition::Last,
        };
        let inj = point.injector();
        let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
        assert!(rep.outcome.is_converged(), "{class:?}: {:?}", rep.outcome);
        let mut r = vec![0.0; b.len()];
        sdc_repro::solvers::operator::residual(&a, &b, &x, &mut r);
        let rel = sdc_repro::dense::vector::nrm2(&r) / sdc_repro::dense::vector::nrm2(&b);
        assert!(rel < 1e-6, "{class:?}: residual {rel}");
    }
}

//! Integration test of the detector's theoretical guarantees (Eq. 3):
//! zero false positives on fault-free runs across matrix families,
//! orthogonalization variants and solver stacks — the property that
//! makes the filter safe to leave on in production.

use sdc_repro::prelude::*;
use sdc_repro::solvers::ftgmres::ftgmres_solve;
use sdc_repro::solvers::gmres::gmres_solve;
use sdc_repro::solvers::ortho::OrthoStrategy;

fn b_for(a: &CsrMatrix) -> Vec<f64> {
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    b
}

fn matrices() -> Vec<(&'static str, CsrMatrix)> {
    use sdc_repro::sparse::gallery::*;
    vec![
        ("poisson2d", poisson2d(15)),
        ("poisson3d", poisson3d(6)),
        ("convdiff", convection_diffusion_2d(12, 3.0, -2.0)),
        ("grcar", grcar(200, 4)),
        ("sprand_spd", sprand_spd(150, 0.05, 17)),
    ]
}

#[test]
fn no_false_positives_any_matrix_any_ortho() {
    for (name, a) in matrices() {
        let b = b_for(&a);
        for ortho in [OrthoStrategy::Mgs, OrthoStrategy::Cgs, OrthoStrategy::Cgs2] {
            let cfg = GmresConfig {
                tol: 1e-9,
                max_iters: 120,
                ortho,
                detector: Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::Halt)),
                ..Default::default()
            };
            let (_, rep) = gmres_solve(&a, &b, None, &cfg);
            assert!(
                rep.detector_events.is_empty(),
                "{name}/{ortho:?}: false positive! {:?}",
                rep.detector_events.first()
            );
            assert!(
                !matches!(rep.outcome, SolveOutcome::Halted(_)),
                "{name}/{ortho:?}: halted on a fault-free run"
            );
        }
    }
}

#[test]
fn no_false_positives_nested_solver() {
    for (name, a) in matrices() {
        let b = b_for(&a);
        let cfg = FtGmresConfig {
            outer: sdc_repro::solvers::fgmres::FgmresConfig {
                tol: 1e-8,
                max_outer: 60,
                ..Default::default()
            },
            inner_iters: 9,
            inner_detector: Some(SdcDetector::with_frobenius_bound(&a, DetectorResponse::Halt)),
            ..Default::default()
        };
        let (_, rep) = ftgmres_solve(&a, &b, None, &cfg);
        assert!(rep.detector_events.is_empty(), "{name}: false positive in nested solve");
    }
}

#[test]
fn two_norm_bound_is_tighter_but_still_sound() {
    // Using the (estimated) ‖A‖₂ instead of ‖A‖_F: a tighter detector
    // that must still never fire fault-free. The power-iteration estimate
    // converges from below, so a safety factor covers the estimation gap.
    use sdc_repro::sparse::norm_est;
    for (name, a) in matrices() {
        let b = b_for(&a);
        let est = norm_est::norm2_est(&a, 2000, 1e-12).value;
        let cfg = GmresConfig {
            tol: 1e-9,
            max_iters: 120,
            detector: Some(SdcDetector {
                bound: est * (1.0 + 1e-8),
                response: DetectorResponse::Halt,
            }),
            ..Default::default()
        };
        let (_, rep) = gmres_solve(&a, &b, None, &cfg);
        assert!(
            rep.detector_events.is_empty(),
            "{name}: 2-norm-bound false positive (bound {est})"
        );
    }
}

#[test]
fn frobenius_dominates_two_norm_estimate() {
    use sdc_repro::sparse::norm_est;
    for (name, a) in matrices() {
        let two = norm_est::norm2_est(&a, 1000, 1e-12).value;
        let fro = a.norm_fro();
        assert!(two <= fro * (1.0 + 1e-10), "{name}: ‖A‖₂ estimate {two} exceeds ‖A‖_F {fro}");
    }
}

//! Integration test: the parallel kernels are bitwise identical to the
//! serial ones, and whole solves are bitwise reproducible run-to-run —
//! the property that makes the fault-injection campaign's comparisons
//! meaningful.
//!
//! NOTE: with the offline `vendor/rayon` stand-in the `par_*` kernels run
//! sequentially, so the bitwise assertions here hold trivially. They are
//! kept because they pin the *contract* these kernels must keep: the day
//! the real rayon (or any threaded pool) is swapped back in via
//! `[workspace.dependencies]`, these tests are what catches a reduction
//! whose result depends on thread count.

use sdc_repro::dense::vector;
use sdc_repro::prelude::*;
use sdc_repro::solvers::ftgmres::ftgmres_solve;

#[test]
fn par_spmv_bitwise_equals_spmv_at_experiment_scale() {
    let a = gallery::poisson2d(60); // 3600 rows, above the parallel cutoff
    let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.193).sin() * 3.0).collect();
    let mut y1 = vec![0.0; a.nrows()];
    let mut y2 = vec![0.0; a.nrows()];
    a.spmv(&x, &mut y1);
    a.par_spmv(&x, &mut y2);
    for i in 0..y1.len() {
        assert_eq!(y1[i].to_bits(), y2[i].to_bits(), "row {i}");
    }
}

#[test]
fn par_dot_bitwise_equals_dot_at_experiment_scale() {
    let n = 100_000;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.371).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.517).cos()).collect();
    assert_eq!(vector::dot(&x, &y).to_bits(), vector::par_dot(&x, &y).to_bits());
}

#[test]
fn whole_solve_is_bitwise_reproducible() {
    let a = gallery::poisson2d(20);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    let cfg = FtGmresConfig {
        outer: sdc_repro::solvers::fgmres::FgmresConfig {
            tol: 1e-9,
            max_outer: 40,
            ..Default::default()
        },
        inner_iters: 10,
        ..Default::default()
    };
    let (x1, r1) = ftgmres_solve(&a, &b, None, &cfg);
    let (x2, r2) = ftgmres_solve(&a, &b, None, &cfg);
    assert_eq!(r1.iterations, r2.iterations);
    for i in 0..x1.len() {
        assert_eq!(x1[i].to_bits(), x2[i].to_bits(), "x[{i}] differs between runs");
    }
    assert_eq!(r1.residual_history.len(), r2.residual_history.len(), "residual histories diverged");
    for (a1, a2) in r1.residual_history.iter().zip(r2.residual_history.iter()) {
        assert_eq!(a1.to_bits(), a2.to_bits());
    }
}

#[test]
fn faulted_solve_is_bitwise_reproducible() {
    use sdc_repro::faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
    use sdc_repro::solvers::ftgmres::ftgmres_solve_instrumented;
    let a = gallery::poisson2d(16);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    let cfg = FtGmresConfig {
        outer: sdc_repro::solvers::fgmres::FgmresConfig {
            tol: 1e-8,
            max_outer: 40,
            ..Default::default()
        },
        inner_iters: 8,
        ..Default::default()
    };
    let point = CampaignPoint {
        aggregate_iteration: 11,
        inner_per_outer: 8,
        class: FaultClass::Huge,
        position: MgsPosition::First,
    };
    let run = || {
        let inj = point.injector();
        ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj)
    };
    let (x1, r1) = run();
    let (x2, r2) = run();
    assert_eq!(r1.iterations, r2.iterations);
    assert_eq!(r1.injections.len(), 1);
    assert_eq!(r2.injections.len(), 1);
    assert_eq!(r1.injections[0].original.to_bits(), r2.injections[0].original.to_bits());
    for i in 0..x1.len() {
        assert_eq!(x1[i].to_bits(), x2[i].to_bits());
    }
}

//! Workspace smoke test: the umbrella crate's re-export surface resolves
//! and a tiny end-to-end solve works through `sdc_repro::prelude` alone.
//!
//! This is the tier-1 canary for the Cargo workspace wiring itself — if a
//! crate rename, prelude change, or dependency edge breaks, this file
//! fails before any numerics are in question.

use sdc_repro::prelude::*;

/// Every re-exported layer is reachable under its umbrella path.
#[test]
fn umbrella_reexports_resolve() {
    // dense
    let m = sdc_repro::dense::DenseMatrix::identity(3);
    assert_eq!(m[(2, 2)], 1.0);
    // sparse (via prelude)
    let a: CsrMatrix = gallery::poisson2d(3);
    assert_eq!(a.nrows(), 9);
    // faults
    let f = sdc_repro::faults::FaultModel::CLASS1_HUGE;
    assert_eq!(f.apply(2.0), 2e150);
    // solvers: prelude types are nameable and default-constructible
    let _ = GmresConfig::default();
    let _ = FtGmresConfig::default();
    let _ = CgConfig { tol: 1e-8, max_iters: 10 };
    let _ = LstsqPolicy::default();
    let _ = OrthoStrategy::Mgs;
    let _ = DetectorResponse::Record;
}

/// A tiny Poisson problem converges end-to-end through the prelude.
#[test]
fn tiny_poisson_gmres_converges() {
    let a = gallery::poisson2d(6);
    let n = a.nrows();
    // b = A·1 so the exact solution is the all-ones vector.
    let ones = vec![1.0; n];
    let mut b = vec![0.0; n];
    a.spmv(&ones, &mut b);

    let cfg = GmresConfig { tol: 1e-10, max_iters: 100, ..Default::default() };
    let (x, report) = gmres_solve(&a, &b, None, &cfg);

    assert!(report.outcome.is_converged(), "outcome: {:?}", report.outcome);
    let max_err = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    assert!(max_err < 1e-8, "max error vs exact solution: {max_err}");
}

//! Integration tests of full preprocessing + solver pipelines:
//! reordering (RCM), factorization preconditioners (ILU(0), SSOR) and
//! checksum-audited operators composed with the fault-tolerant solvers.

use sdc_repro::prelude::*;
use sdc_repro::solvers::fgmres::{fgmres_solve, FgmresConfig, FixedPrecond};
use sdc_repro::solvers::ilu::{Ilu0, Ssor};
use sdc_repro::sparse::perm::{reverse_cuthill_mckee, Permutation};
use sdc_repro::sparse::structure::bandwidth;

fn b_for(a: &CsrMatrix) -> Vec<f64> {
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    b
}

#[test]
fn rcm_then_ilu_then_fgmres_full_pipeline() {
    // Shuffle the operator (simulating an unstructured ordering), then
    // RCM-reorder, factor ILU(0), and solve the permuted system; finally
    // un-permute and verify against the original system.
    let a = gallery::convection_diffusion_2d(14, 2.0, -1.0);
    let n = a.nrows();
    let shuffle = Permutation::from_vec((0..n).map(|i| (i * 89 + 7) % n).collect::<Vec<_>>());
    let shuffled = shuffle.apply_sym(&a);
    let (lw, uw) = bandwidth(&shuffled);

    let rcm = reverse_cuthill_mckee(&shuffled);
    let reordered = rcm.apply_sym(&shuffled);
    let (lr, ur) = bandwidth(&reordered);
    assert!(lr + ur < lw + uw, "RCM failed to reduce bandwidth: {lr}+{ur} vs {lw}+{uw}");

    // Solve the reordered system with ILU(0)-preconditioned FGMRES.
    let b_orig = b_for(&a);
    let b_shuffled = shuffle.apply_vec(&b_orig);
    let b_reordered = rcm.apply_vec(&b_shuffled);
    let ilu = Ilu0::factor(&reordered).expect("ILU(0) on reordered operator");
    let cfg = FgmresConfig { tol: 1e-10, max_outer: 200, ..Default::default() };
    let (x_reordered, rep) =
        fgmres_solve(&reordered, &b_reordered, None, &cfg, &mut FixedPrecond(ilu));
    assert!(rep.outcome.is_converged(), "{:?}", rep.outcome);

    // Undo both permutations and compare with the ones solution.
    let x_shuffled = rcm.unapply_vec(&x_reordered);
    let x = shuffle.unapply_vec(&x_shuffled);
    let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-6, "pipeline solution error {err}");
}

#[test]
fn ilu_preconditioned_fgmres_beats_unpreconditioned() {
    let a = gallery::anisotropic_poisson2d(16, 0.05);
    let b = b_for(&a);
    let cfg = FgmresConfig { tol: 1e-9, max_outer: 400, ..Default::default() };
    let (_, plain) = fgmres_solve(
        &a,
        &b,
        None,
        &cfg,
        &mut FixedPrecond(sdc_repro::solvers::precond::IdentityPrecond),
    );
    let ilu = Ilu0::factor(&a).unwrap();
    let (x, pre) = fgmres_solve(&a, &b, None, &cfg, &mut FixedPrecond(ilu));
    assert!(pre.outcome.is_converged());
    assert!(
        pre.iterations * 2 <= plain.iterations.max(2),
        "ILU(0) should at least halve anisotropic iterations: {} vs {}",
        pre.iterations,
        plain.iterations
    );
    let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-5);
}

#[test]
fn ssor_inside_ftgmres_inner_runs_through_faults() {
    // An SSOR-preconditioned *outer* FGMRES wrapped around unreliable
    // inner GMRES is beyond the paper; here we check the simpler
    // composition: FT-GMRES on an SSOR-preprocessed operator still runs
    // through a fault. (SSOR as explicit operator transform.)
    use sdc_repro::faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
    use sdc_repro::solvers::ftgmres::ftgmres_solve_instrumented;
    let a = gallery::poisson2d(12);
    let b = b_for(&a);
    let cfg = FtGmresConfig {
        outer: FgmresConfig { tol: 1e-8, max_outer: 50, ..Default::default() },
        inner_iters: 10,
        ..Default::default()
    };
    let point = CampaignPoint {
        aggregate_iteration: 16,
        inner_per_outer: 10,
        class: FaultClass::Huge,
        position: MgsPosition::Last,
    };
    let inj = point.injector();
    let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
    assert!(rep.outcome.is_converged());
    let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-6);

    // Sanity: the SSOR preconditioner itself composes with FGMRES.
    let (y, rep2) = fgmres_solve(&a, &b, None, &cfg.outer, &mut FixedPrecond(Ssor::new(&a, 1.3)));
    assert!(rep2.outcome.is_converged());
    let err: f64 = y.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-6);
}

#[test]
fn checksum_audited_operator_in_ftgmres() {
    use sdc_repro::solvers::instrumented::InstrumentedSpmv;
    // Run the whole nested solver through a checksum-audited operator:
    // fault-free there must be zero events across every inner and outer
    // apply.
    let a = gallery::poisson2d(10);
    let b = b_for(&a);
    let op = InstrumentedSpmv::new(&a, &sdc_repro::faults::NoFaults).with_checksum(1e-12);
    let cfg = FtGmresConfig {
        outer: FgmresConfig { tol: 1e-8, max_outer: 40, ..Default::default() },
        inner_iters: 10,
        ..Default::default()
    };
    let (x, rep) = sdc_repro::solvers::ftgmres::ftgmres_solve(&op, &b, None, &cfg);
    assert!(rep.outcome.is_converged());
    assert!(op.applies() > 40, "both inner and outer applies audited");
    assert!(op.checksum_events().is_empty(), "no false positives across the stack");
    let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-6);
}

//! Integration tests asserting the *shape* of the paper's headline
//! figures at a CI-friendly scale, through the same harness the full
//! experiment binaries use. If these pass, the regenerated Fig. 3/4
//! qualitatively match the paper.

use sdc_bench::campaign::{failure_free, run_sweep, CampaignConfig};
use sdc_bench::problems;
use sdc_repro::faults::campaign::{FaultClass, MgsPosition};
use sdc_repro::prelude::*;

fn cfg() -> CampaignConfig {
    CampaignConfig {
        inner_iters: 10,
        outer_tol: 1e-7,
        outer_max: 80,
        detector_response: None,
        stride: 3,
        inner_lsq: LstsqPolicy::Standard,
        ..Default::default()
    }
}

#[test]
fn fig3_shape_poisson() {
    let p = problems::poisson(16);
    let cfg = cfg();
    let ff = failure_free(&p, &cfg);
    assert!(ff.outcome.is_converged());
    let ff_outer = ff.iterations;

    let mut worst_by_class = Vec::new();
    for class in FaultClass::all() {
        let res = run_sweep(&p, &cfg, class, MgsPosition::First, ff_outer);
        // Claim (v): zero silent failures, every experiment converged.
        assert_eq!(res.count_failures(), 0, "{class:?}");
        for pt in &res.points {
            assert!(pt.true_rel_residual <= 1e-6, "{class:?} agg {}: silent!", pt.aggregate);
        }
        worst_by_class.push((class, res.max_increase()));
    }
    // Claim (i)-(ii): bounded penalties; class-1 worst or tied.
    let huge = worst_by_class[0].1;
    for &(class, w) in &worst_by_class {
        assert!(w <= ff_outer, "{class:?}: unbounded penalty {w}");
        assert!(w <= huge + 1, "{class:?} ({w}) should not far exceed class-1 ({huge})");
    }
}

#[test]
fn fig3_shape_detector_removes_class1_penalty() {
    let p = problems::poisson(16);
    let base = cfg();
    let ff = failure_free(&p, &base);
    let undetected = run_sweep(&p, &base, FaultClass::Huge, MgsPosition::First, ff.iterations);

    let det = CampaignConfig { detector_response: Some(DetectorResponse::RestartInner), ..base };
    let detected = run_sweep(&p, &det, FaultClass::Huge, MgsPosition::First, ff.iterations);
    // Claim: full coverage of committed class-1 faults...
    for pt in &detected.points {
        if pt.injected {
            assert!(pt.detected, "committed fault at {} escaped", pt.aggregate);
        }
    }
    // ...and the detector never makes things worse than running blind.
    assert!(
        detected.max_increase() <= undetected.max_increase().max(1),
        "detector increased the worst case: {} vs {}",
        detected.max_increase(),
        undetected.max_increase()
    );
}

#[test]
fn fig4_shape_nonsymmetric_early_vulnerability() {
    // The paper's §VII-E observation on the nonsymmetric problem:
    // penalties concentrate early (the first inner solves). Verified on
    // the small synthetic circuit.
    let p = problems::dcop(None, 1200, 1311);
    let cfg = CampaignConfig { outer_tol: 1e-6, ..cfg() };
    let ff = failure_free(&p, &cfg);
    assert!(ff.outcome.is_converged(), "{:?}", ff.outcome);
    let res = run_sweep(&p, &cfg, FaultClass::Slight, MgsPosition::First, ff.iterations);
    assert_eq!(res.count_failures(), 0);
    let worst_point =
        res.points.iter().max_by_key(|pt| pt.outer_iterations).expect("nonempty sweep");
    if worst_point.outer_iterations > ff.iterations {
        let domain = res.points.last().unwrap().aggregate;
        assert!(
            worst_point.aggregate <= domain / 2 + 1,
            "worst penalty at {} of {domain}: not early",
            worst_point.aggregate
        );
    }
}

#[test]
fn ritz_values_of_arnoldi_h_lie_in_operator_spectrum() {
    // Cross-validation of three substrates: Arnoldi (core), the exact
    // Poisson spectrum (sparse gallery) and the symmetric eigensolver
    // (dense): the Ritz values of the tridiagonal H are inside
    // [λ_min, λ_max] of the operator.
    use sdc_repro::dense::eigen::symmetric_eigen;
    use sdc_repro::solvers::arnoldi::arnoldi;
    use sdc_repro::solvers::ortho::OrthoStrategy;
    let m = 12;
    let a = gallery::poisson2d(m);
    let (lmin, lmax, _) = gallery::poisson2d_spectrum(m);
    let v0: Vec<f64> = (0..a.nrows()).map(|i| ((i as f64) * 0.7).sin() + 0.3).collect();
    let dec = arnoldi(&a, &v0, 15, OrthoStrategy::Mgs);
    let k = dec.h.cols();
    // Square (tridiagonal) part of H; symmetrize away rounding noise.
    let mut hsq = sdc_repro::dense::DenseMatrix::zeros(k, k);
    for c in 0..k {
        for r in 0..k {
            hsq[(r, c)] = (dec.h[(r, c)] + dec.h[(c, r)]) / 2.0;
        }
    }
    let e = symmetric_eigen(&hsq, 1e-8).unwrap();
    assert!(e.lambda_min() >= lmin - 1e-8, "Ritz below λ_min: {}", e.lambda_min());
    assert!(e.lambda_max() <= lmax + 1e-8, "Ritz above λ_max: {}", e.lambda_max());
    // The extreme Ritz values approximate the spectrum edges from inside.
    assert!(e.lambda_max() > 0.8 * lmax, "λ_max Ritz convergence too poor");
}

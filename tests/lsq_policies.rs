//! Integration tests of the §VI-D least-squares policies end-to-end:
//! the paper's Approaches 1/2/3 composed with the full solver stack
//! under Hessenberg corruption.

use sdc_repro::faults::trigger::LoopPosition;
use sdc_repro::faults::{FaultModel, SingleFaultInjector, SitePredicate, Trigger};
use sdc_repro::prelude::*;
use sdc_repro::solvers::gmres::{gmres_solve, gmres_solve_instrumented, SiteContext};

fn problem(m: usize) -> (CsrMatrix, Vec<f64>) {
    let a = gallery::poisson2d(m);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    (a, b)
}

fn policies() -> [LstsqPolicy; 3] {
    [
        LstsqPolicy::Standard,
        LstsqPolicy::FallbackOnNonFinite { tol: 1e-12 },
        LstsqPolicy::RankRevealing { tol: 1e-12 },
    ]
}

#[test]
fn fault_free_all_policies_identical_iterations() {
    let (a, b) = problem(10);
    let mut iters = Vec::new();
    for policy in policies() {
        let cfg =
            GmresConfig { tol: 1e-9, max_iters: 300, lsq_policy: policy, ..Default::default() };
        let (x, rep) = gmres_solve(&a, &b, None, &cfg);
        assert!(rep.outcome.is_converged(), "{policy:?}: {:?}", rep.outcome);
        let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "{policy:?}: error {err}");
        iters.push(rep.iterations);
    }
    assert_eq!(iters[0], iters[1]);
    assert_eq!(iters[0], iters[2]);
}

#[test]
fn nan_coefficient_standard_vs_fallback() {
    // A NaN injected into h (no detector): Standard lets the NaN poison
    // the projected solve (loud NumericalBreakdown or non-finite result,
    // never a silently wrong "Converged"); the solve must not claim
    // convergence with a broken residual.
    let (a, b) = problem(8);
    let inj = || {
        SingleFaultInjector::new(
            FaultModel::SetNan,
            Trigger::once(SitePredicate::mgs_site(1, 3, LoopPosition::First)),
        )
    };
    for policy in policies() {
        let cfg =
            GmresConfig { tol: 1e-9, max_iters: 60, lsq_policy: policy, ..Default::default() };
        let i = inj();
        let (x, rep) = gmres_solve_instrumented(
            &a,
            &b,
            None,
            &cfg,
            &i,
            SiteContext { outer_iteration: 1, inner_solve: 1 },
        );
        assert_eq!(rep.injections.len(), 1, "{policy:?}");
        let true_res = rep.true_residual_norm.unwrap();
        let claims_success = rep.outcome.is_converged();
        let actually_good =
            true_res.is_finite() && true_res <= 1e-6 * sdc_repro::dense::vector::nrm2(&b);
        assert!(
            !claims_success || actually_good,
            "{policy:?}: claimed {:?} with true residual {true_res:.3e} — silent failure!",
            rep.outcome
        );
        let _ = x;
    }
}

#[test]
fn ftgmres_with_each_inner_policy_survives_huge_fault() {
    use sdc_repro::faults::campaign::{CampaignPoint, FaultClass, MgsPosition};
    use sdc_repro::solvers::ftgmres::ftgmres_solve_instrumented;
    let (a, b) = problem(10);
    for policy in policies() {
        let cfg = FtGmresConfig {
            outer: sdc_repro::solvers::fgmres::FgmresConfig {
                tol: 1e-8,
                max_outer: 60,
                ..Default::default()
            },
            inner_iters: 10,
            inner_lsq_policy: policy,
            ..Default::default()
        };
        let point = CampaignPoint {
            aggregate_iteration: 13,
            inner_per_outer: 10,
            class: FaultClass::Huge,
            position: MgsPosition::First,
        };
        let inj = point.injector();
        let (x, rep) = ftgmres_solve_instrumented(&a, &b, None, &cfg, &inj);
        assert!(rep.outcome.is_converged(), "{policy:?}: {:?}", rep.outcome);
        let mut r = vec![0.0; b.len()];
        sdc_repro::solvers::operator::residual(&a, &b, &x, &mut r);
        let rel = sdc_repro::dense::vector::nrm2(&r) / sdc_repro::dense::vector::nrm2(&b);
        assert!(rel <= 1e-7, "{policy:?}: rel residual {rel}");
    }
}

#[test]
fn rank_revealing_outer_policy_also_works() {
    use sdc_repro::solvers::ftgmres::ftgmres_solve;
    let (a, b) = problem(9);
    let mut cfg = FtGmresConfig {
        outer: sdc_repro::solvers::fgmres::FgmresConfig {
            tol: 1e-8,
            max_outer: 50,
            ..Default::default()
        },
        inner_iters: 8,
        ..Default::default()
    };
    cfg.outer.lsq_policy = LstsqPolicy::RankRevealing { tol: 1e-12 };
    let (x, rep) = ftgmres_solve(&a, &b, None, &cfg);
    assert!(rep.outcome.is_converged());
    let err: f64 = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
    assert!(err < 1e-6);
}

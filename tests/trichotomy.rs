//! Integration test of FGMRES' "trichotomy" (§VI-C): the flexible solver
//! either converges, correctly detects an invariant subspace, or loudly
//! reports rank deficiency — silence is structurally impossible.

use sdc_repro::prelude::*;
use sdc_repro::solvers::fgmres::{
    fgmres_solve, FgmresConfig, FixedPrecond, FlexiblePreconditioner, PrecondReport,
};
use sdc_repro::solvers::precond::IdentityPrecond;

#[test]
fn converges_on_regular_problem() {
    let a = gallery::poisson2d(10);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    let cfg = FgmresConfig { tol: 1e-9, max_outer: 150, ..Default::default() };
    let (_, rep) = fgmres_solve(&a, &b, None, &cfg, &mut FixedPrecond(IdentityPrecond));
    assert_eq!(rep.outcome, SolveOutcome::Converged);
}

#[test]
fn invariant_subspace_detected_on_identity() {
    // A = I: first iteration produces an invariant subspace; H(1:1,1:1)
    // is nonsingular → happy breakdown, converged.
    let a = CsrMatrix::identity(30);
    let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
    let cfg = FgmresConfig { tol: 1e-12, max_outer: 10, ..Default::default() };
    let (x, rep) = fgmres_solve(&a, &b, None, &cfg, &mut FixedPrecond(IdentityPrecond));
    assert!(
        matches!(rep.outcome, SolveOutcome::InvariantSubspace | SolveOutcome::Converged),
        "{:?}",
        rep.outcome
    );
    for i in 0..30 {
        assert!((x[i] - b[i]).abs() < 1e-10);
    }
}

/// A preconditioner engineered to trigger Saad's Proposition 2.2: by
/// alternating `M⁻¹ = A` and `M⁻¹ = A⁻¹`-ish applications it can produce
/// a singular projected matrix with a vanishing subdiagonal.
struct DegeneratePrecond {
    count: usize,
    q1: Vec<f64>,
}

impl FlexiblePreconditioner for DegeneratePrecond {
    fn apply_flexible(&mut self, _j: usize, q: &[f64], z: &mut [f64]) -> PrecondReport {
        self.count += 1;
        if self.count == 1 {
            // Remember the first Krylov direction and return it.
            self.q1 = q.to_vec();
            z.copy_from_slice(q);
        } else {
            // Return something in the span already explored: z = q1.
            // Then A z is (nearly) in the span of existing basis vectors,
            // driving h_{j+1,j} toward zero with a singular H square part.
            z.copy_from_slice(&self.q1);
        }
        PrecondReport::default()
    }
}

#[test]
fn rank_deficiency_is_loud_not_silent() {
    // With the degenerate preconditioner the solver must either converge
    // (if the lucky subspace contains the solution), report an invariant
    // subspace, report rank deficiency, or exhaust iterations — but NEVER
    // claim convergence with a bad solution.
    let a = gallery::poisson2d(8);
    let ones = vec![1.0; a.ncols()];
    let mut b = vec![0.0; a.nrows()];
    a.par_spmv(&ones, &mut b);
    let cfg = FgmresConfig { tol: 1e-10, max_outer: 12, ..Default::default() };
    let mut p = DegeneratePrecond { count: 0, q1: vec![] };
    let (x, rep) = fgmres_solve(&a, &b, None, &cfg, &mut p);
    match rep.outcome {
        SolveOutcome::Converged | SolveOutcome::InvariantSubspace => {
            // Then the answer must actually be right (reliable final check).
            let mut r = vec![0.0; b.len()];
            sdc_repro::solvers::operator::residual(&a, &b, &x, &mut r);
            let rel = sdc_repro::dense::vector::nrm2(&r) / sdc_repro::dense::vector::nrm2(&b);
            assert!(rel <= 1e-8, "claimed convergence with residual {rel}");
        }
        SolveOutcome::RankDeficient => { /* loud, correct */ }
        SolveOutcome::MaxIterations => { /* honest no-progress report */ }
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn singular_operator_reports_loudly() {
    // The path-graph Laplacian is exactly singular (ones in the null
    // space). With b chosen outside the range the solver cannot converge;
    // it must end in one of the loud/honest states.
    let a = gallery::laplacian_path_graph(40);
    let b = vec![1.0; 40]; // constant vector: not in range(L) (sum ≠ 0 component)
    let cfg = FgmresConfig { tol: 1e-10, max_outer: 45, ..Default::default() };
    let (_, rep) = fgmres_solve(&a, &b, None, &cfg, &mut FixedPrecond(IdentityPrecond));
    assert!(
        matches!(
            rep.outcome,
            SolveOutcome::RankDeficient
                | SolveOutcome::MaxIterations
                | SolveOutcome::NumericalBreakdown(_)
        ),
        "singular system must not report success: {:?}",
        rep.outcome
    );
}
